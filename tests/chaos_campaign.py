#!/usr/bin/env python3
"""Chaos campaign: sweep every registered fault site across a small driver
run and assert each lands in the documented exit-code taxonomy
(docs/ROBUSTNESS.md; wired as the `chaos-smoke` CI job).

The campaign enumerates the compiled-in site catalogue through
`ptatin_driver -list_fault_sites` (FaultInjector::known_sites()), so a fault
site added to the code without a scenario here -- or a scenario naming a
site that no longer exists -- fails loudly instead of silently testing
nothing. For every site it arms `site:first-fire` (the earliest call the
site observes), runs the scenario, and checks:

  * the exit code is one of the codes the taxonomy documents for that
    failure class (0 recovered, 3 checkpoint, 6 unrecoverable SDC, ...);
  * the spec actually fired: the driver disarms the injector at exit, which
    warns "never fired" for armed-but-unfired specs, and the campaign treats
    that warning in a faulted run as a failure (a fault that never fires
    proves nothing);
  * any site-specific log marker (e.g. "state healed" for the SDC heal).

Two end-to-end SDC checks ride along (ISSUE 8 acceptance): a run with an
injected `sdc.field_bitflip` / `sdc.krylov_drift` fault must be detected,
healed by a same-dt replay, and finish with a `-final_state` digest bitwise
identical to the fault-free run; and a typo'd site name must draw the
never-fired warning.

Usage: chaos_campaign.py /path/to/ptatin_driver [--only SITE] [--keep TMP]
"""

import argparse
import json
import shutil
import subprocess
import sys
import tempfile

RUN_TIMEOUT_S = 300

# Documented driver exit codes (ptatin/exit_codes.hpp; `-help` taxonomy).
TAXONOMY = {0, 1, 2, 3, 4, 5, 6}


class Run:
    """One driver invocation of a scenario: extra flags beyond the base
    model run, the armed fault spec (None = clean run), and the exit codes
    the taxonomy allows for it."""

    def __init__(self, flags=(), fault=None, expect=(0,), must_log=None,
                 model=None):
        self.flags = list(flags)
        self.fault = fault
        self.expect = set(expect)
        self.must_log = must_log
        self.model = model  # None = the default sinker base run


def base_cmd(driver, model=None):
    # -verbose: the default log level is silent, and the campaign's markers
    # ("fault injected", "state healed", "never fired") come from log_warn.
    if model == "rifting":
        # The Stokes outer Krylov is GCR (explicit residual -- no recurrence
        # to drift), so the sentinel's end-to-end path is the energy solve's
        # GMRES, which only the rifting model runs.
        return [driver, "-model", "rifting", "-mx", "6", "-steps", "2",
                "-verbose"]
    return [driver, "-model", "sinker", "-m", "6", "-steps", "3", "-verbose"]


def scenarios(tmp):
    """site -> list of Runs. Ordering inside a list matters (checkpoint
    scenarios write a rotation first, then restart against it)."""
    ck = f"{tmp}/ck"
    ckflags = ["-checkpoint_dir", ck, "-checkpoint_every", "1"]
    proc = ["-decomp", "2x2x1", "-transport", "process"]
    return {
        # Solver-tier faults: one corrupted call, rolled back and retried at
        # a cut dt -- the run recovers (exit 0).
        "ksp.rnorm": [Run(fault="ksp.rnorm:1:nan:1")],
        "ksp.breakdown": [Run(fault="ksp.breakdown:1:zero:1")],
        "nonlin.rnorm": [Run(fault="nonlin.rnorm:2:nan:1")],
        "nonlin.linsolve": [Run(fault="nonlin.linsolve:1:error:1")],
        # Checkpoint-tier faults. A failed save degrades to an unguarded
        # step (0). Corruption planted at write time (torn publish, bit
        # flip) must be caught by CRC on the restart read, which falls back
        # to the previous checkpoint (0) or exits 3 when none is loadable.
        "checkpoint.write": [
            Run(flags=ckflags, fault="checkpoint.write:1:error:1"),
        ],
        "checkpoint.read": [
            Run(flags=ckflags),
            Run(flags=["-restart", ck], fault="checkpoint.read:1:error:1",
                expect={0, 3}),
        ],
        "checkpoint.torn_write": [
            Run(flags=ckflags, fault="checkpoint.torn_write:3:error:1"),
            Run(flags=["-restart", ck], expect={0, 3},
                must_log="skipped corrupt checkpoint"),
        ],
        "checkpoint.bitflip": [
            Run(flags=ckflags, fault="checkpoint.bitflip:3:error:1"),
            Run(flags=["-restart", ck], expect={0, 3},
                must_log="skipped corrupt checkpoint"),
        ],
        # Health-tier: a poisoned field trips the health pass, rolls back,
        # and the retry recovers.
        "health.field_nan": [
            Run(flags=["-health_every", "1"],
                fault="health.field_nan:1:error:1"),
        ],
        # Transport-tier: the framed fabric retransmits / restarts workers;
        # the run completes (docs/TRANSPORT.md).
        "transport.drop": [Run(flags=proc, fault="transport.drop:1:error:1")],
        "transport.truncate": [
            Run(flags=proc, fault="transport.truncate:1:error:1"),
        ],
        "transport.delay": [Run(flags=proc, fault="transport.delay:1:error:1")],
        "transport.worker_kill": [
            Run(flags=proc, fault="transport.worker_kill:1:error:1"),
        ],
        # SDC-tier (docs/ROBUSTNESS.md). Bit flips in sealed *model state*
        # are healed from the last good snapshot and replayed at the same dt
        # (exit 0). A flip in sealed *operator* data fails the poisoned
        # solve (post-solve seal verify) and heals by rebuilding the
        # hierarchy on the same-dt replay -- unless the corruption recurs on
        # every rebuild (count '*'), which exhausts the replays and exits 6.
        # A Krylov recurrence drifted off the true residual trips the
        # sentinel and heals by same-dt replay; the end-to-end sentinel path
        # is the rifting model's energy GMRES (the Stokes outer is GCR).
        "sdc.field_bitflip": [
            Run(fault="sdc.field_bitflip:1:error:1", must_log="state healed"),
        ],
        "sdc.particle_bitflip": [
            Run(fault="sdc.particle_bitflip:1:error:1",
                must_log="state healed"),
        ],
        "sdc.matrix_bitflip": [
            Run(flags=["-scrub_every", "1"],
                fault="sdc.matrix_bitflip:1:error:1",
                must_log="setup-immutable operator corrupted"),
            Run(flags=["-scrub_every", "1"],
                fault="sdc.matrix_bitflip:1:error:*", expect={6},
                must_log="beyond recovery"),
        ],
        "sdc.krylov_drift": [
            Run(flags=["-sentinel_every", "2"],
                fault="sdc.krylov_drift:1:error:1", must_log="diverged_sdc",
                model="rifting"),
        ],
    }


def run_driver(cmd):
    p = subprocess.run(cmd, capture_output=True, text=True,
                       timeout=RUN_TIMEOUT_S)
    return p.returncode, p.stdout + p.stderr


def list_sites(driver):
    code, out = run_driver([driver, "-list_fault_sites"])
    assert code == 0, f"-list_fault_sites exited {code}:\n{out}"
    sites = []
    for line in out.splitlines():
        if "\t" in line:
            sites.append(line.split("\t", 1)[0])
    assert sites, f"no sites parsed from -list_fault_sites output:\n{out}"
    return sites


def sweep(driver, tmp, only=None):
    sites = list_sites(driver)
    plans = scenarios(tmp)
    missing = [s for s in sites if s not in plans]
    stale = [s for s in plans if s not in sites]
    assert not missing, f"fault sites without a chaos scenario: {missing}"
    assert not stale, f"chaos scenarios for unregistered sites: {stale}"

    failures = []
    for site in sites:
        if only and site != only:
            continue
        shutil.rmtree(f"{tmp}/ck", ignore_errors=True)
        for i, run in enumerate(plans[site]):
            cmd = base_cmd(driver, run.model) + run.flags
            if run.fault:
                cmd += ["-faults", run.fault]
            code, out = run_driver(cmd)
            tag = f"{site}[{i}]"
            problems = []
            if code not in run.expect:
                problems.append(f"exit {code}, expected one of "
                                f"{sorted(run.expect)}")
            if code not in TAXONOMY:
                problems.append(f"exit {code} outside the documented "
                                f"taxonomy {sorted(TAXONOMY)}")
            if run.fault and "never fired" in out:
                problems.append("armed spec never fired (site not reached "
                                "by this scenario)")
            if run.must_log and run.must_log not in out:
                problems.append(f"log marker {run.must_log!r} not found")
            if problems:
                failures.append(f"{tag}: " + "; ".join(problems) +
                                f"\n  cmd: {' '.join(cmd)}\n--- output ---\n"
                                f"{out}\n--------------")
                print(f"FAIL {tag}")
            else:
                print(f"ok   {tag} (exit {code})")
    return failures


def final_state(driver, tmp, name, extra, model=None):
    path = f"{tmp}/{name}.json"
    cmd = base_cmd(driver, model) + ["-final_state", path] + extra
    code, out = run_driver(cmd)
    assert code == 0, f"{name}: exit {code}\n{out}"
    with open(path) as f:
        return json.load(f), out


def check_heal_digests(driver, tmp):
    """ISSUE 8 acceptance: injected sdc.field_bitflip / sdc.krylov_drift are
    detected, healed via same-dt replay, and the healed run's -final_state
    digest is bitwise equal to a fault-free run's."""
    ref, _ = final_state(driver, tmp, "ref", [])
    healed, out = final_state(driver, tmp, "healed",
                              ["-faults", "sdc.field_bitflip:1:error:1"])
    assert "state healed" in out, f"field_bitflip heal not logged:\n{out}"
    assert healed == ref, f"healed field_bitflip digest differs:\n{healed}\n{ref}"
    # The sentinel's end-to-end path is the rifting model's energy GMRES
    # (the Stokes outer is GCR), so the drift heal compares against a
    # rifting reference carrying the same sentinel flag.
    rref, _ = final_state(driver, tmp, "rift_ref", ["-sentinel_every", "2"],
                          model="rifting")
    drift, out = final_state(
        driver, tmp, "drift",
        ["-sentinel_every", "2", "-faults", "sdc.krylov_drift:1:error:1"],
        model="rifting")
    assert "diverged_sdc" in out, f"krylov_drift trip not logged:\n{out}"
    assert drift == rref, f"healed krylov_drift digest differs:\n{drift}\n{rref}"
    # The sentinel and scrubber only *read*: enabling them on a clean run
    # must not perturb the trajectory.
    clean, _ = final_state(driver, tmp, "clean",
                           ["-sentinel_every", "2", "-scrub_every", "1"])
    assert clean == ref, f"sentinel/scrub perturbed a clean run:\n{clean}\n{ref}"
    print("ok   heal-digest identity (field_bitflip, krylov_drift, clean "
          "sentinel+scrub)")


def check_typo_warning(driver):
    """A typo'd site name silently tests nothing -- except the injector now
    warns at teardown, and this campaign would flag it."""
    code, out = run_driver(base_cmd(driver) + ["-faults", "sdc.fieldbitflip:1"])
    assert code == 0, f"typo run exited {code}:\n{out}"
    assert "never fired" in out, f"no never-fired warning for a typo'd site:\n{out}"
    print("ok   typo'd site name draws the never-fired warning")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("driver", help="path to ptatin_driver")
    ap.add_argument("--only", help="sweep a single site")
    ap.add_argument("--keep", help="use (and keep) this scratch dir")
    args = ap.parse_args()

    tmp = args.keep or tempfile.mkdtemp(prefix="chaos_campaign.")
    try:
        failures = sweep(args.driver, tmp, only=args.only)
        if not args.only:
            check_typo_warning(args.driver)
            check_heal_digests(args.driver, tmp)
    finally:
        if not args.keep:
            shutil.rmtree(tmp, ignore_errors=True)
    if failures:
        print(f"\n{len(failures)} scenario(s) failed:\n")
        print("\n".join(failures))
        return 1
    print("\nchaos campaign: every fault site landed in the documented "
          "exit-code taxonomy")
    return 0


if __name__ == "__main__":
    sys.exit(main())
