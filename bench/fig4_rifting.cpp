// Figure 4 reproduction: nonlinear and Krylov iteration counts per time step
// of the continental rifting model (§V).
//
// The paper's signature: the first few steps need many Newton iterations
// (topography out of equilibrium with the initial buoyancy structure), after
// which 1-3 Newton iterations per step suffice despite active yielding;
// the per-step Krylov totals stay bounded.
//
// Usage: fig4_rifting [-steps 8] [-mx 16 -my 8 -mz 8] [-dt 0.004]
#include "bench_common.hpp"
#include "ptatin/context.hpp"
#include "ptatin/models_rifting.hpp"

using namespace ptatin;

int main(int argc, char** argv) {
  Options cli = Options::from_args(argc, argv);
  const int steps = cli.get_int("steps", 8);
  RiftingParams rp;
  rp.mx = cli.get_index("mx", 16);
  rp.my = cli.get_index("my", 8);
  rp.mz = cli.get_index("mz", 8);
  rp.initial_topography = cli.get_real("topo", rp.initial_topography);
  const Real dt0 = cli.get_real("dt", 0.004);

  bench::banner("Figure 4: Newton + Krylov iterations per rifting time step");
  std::printf("mesh %lldx%lldx%lld, %d steps, V(3,3), max 5 Newton its, "
              "||F|| reduction 1e-2 (paper's stopping rule)\n\n",
              (long long)rp.mx, (long long)rp.my, (long long)rp.mz, steps);

  ModelSetup setup = make_rifting_model(rp);
  PtatinOptions opts;
  opts.points_per_dim = 2;
  opts.ale.vertical_axis = 1;
  opts.nonlinear.max_it = 5;     // "maximum of five iterations"
  opts.nonlinear.rtol = 1e-2;    // "reduced by a factor of 1e-2"
  opts.nonlinear.picard_iterations = 1;
  opts.nonlinear.linear.gmg.levels = 2;
  opts.nonlinear.linear.gmg.smooth_pre = 3;  // V(3,3) (§V-A)
  opts.nonlinear.linear.gmg.smooth_post = 3;
  opts.nonlinear.linear.coarse_solve = GmgCoarseSolve::kAsmCg; // CG+ASM(ILU0)
  opts.nonlinear.linear.coarse_bjacobi_blocks = 4;
  opts.nonlinear.linear.krylov.max_it = 400;

  PtatinContext ctx(std::move(setup), opts);

  std::printf("%6s %12s %14s %16s %14s %12s\n", "step", "Newton",
              "TotalKrylov", "Krylov/Newton", "yielded pts", "t(s)");
  long total_newton = 0, total_krylov = 0;
  for (int s = 0; s < steps; ++s) {
    Real dt = std::min(dt0, ctx.suggest_dt(0.25));
    if (s == 0) dt = dt0; // first step: velocity is zero, CFL unbounded
    StepReport rep = ctx.step(dt);
    total_newton += rep.nonlinear.iterations;
    total_krylov += rep.nonlinear.total_krylov_iterations;
    std::printf("%6d %12d %14ld %16.1f %14lld %12.1f\n", s,
                rep.nonlinear.iterations,
                rep.nonlinear.total_krylov_iterations,
                rep.nonlinear.iterations > 0
                    ? double(rep.nonlinear.total_krylov_iterations) /
                          rep.nonlinear.iterations
                    : 0.0,
                (long long)rep.yielded_points, rep.seconds);
  }
  std::printf("\ntotals: %ld Newton, %ld Krylov; avg %.1f Krylov/step\n",
              total_newton, total_krylov, double(total_krylov) / steps);
  std::printf("paper reference shape (Fig. 4): early steps hit the Newton "
              "cap while the free surface equilibrates, then 1-3 Newton "
              "iterations per step despite active yielding.\n");
  return 0;
}
