// Kernel-level micro-benchmarks (google-benchmark): the building blocks
// whose costs the paper's §III-D model predicts.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <type_traits>

#include "common/rng.hpp"
#include "fem/basis.hpp"
#include "fem/point_location.hpp"
#include "mpm/projection.hpp"
#include "ptatin/models_sinker.hpp"
#include "stokes/tensor_contract.hpp"
#include "stokes/viscous_ops.hpp"

using namespace ptatin;

namespace {

StructuredMesh bench_mesh(Index m = 8) {
  StructuredMesh mesh = StructuredMesh::box(m, m, m, {0, 0, 0}, {1, 1, 1});
  mesh.deform([](const Vec3& x) {
    return Vec3{x[0] + 0.03 * std::sin(3 * x[1]), x[1],
                x[2] + 0.02 * x[0] * x[1]};
  });
  return mesh;
}

void BM_Q2BasisEval(benchmark::State& state) {
  Rng rng(1);
  Real N[kQ2NodesPerEl];
  Real xi[3] = {0.1, -0.3, 0.7};
  for (auto _ : state) {
    q2_eval(xi, N);
    benchmark::DoNotOptimize(N);
    xi[0] = -xi[0];
  }
}
BENCHMARK(BM_Q2BasisEval);

void BM_Q2DerivEval(benchmark::State& state) {
  Real dN[kQ2NodesPerEl][3];
  Real xi[3] = {0.1, -0.3, 0.7};
  for (auto _ : state) {
    q2_eval_deriv(xi, dN);
    benchmark::DoNotOptimize(dN);
    xi[1] = -xi[1];
  }
}
BENCHMARK(BM_Q2DerivEval);

void BM_TensorGradient(benchmark::State& state) {
  const auto& tab = q2_tabulation();
  Real u[27], gx[27], gy[27], gz[27];
  Rng rng(2);
  for (auto& v : u) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    tensor_kernel::tensor_gradient(tab.B1, tab.D1, u, gx, gy, gz);
    benchmark::DoNotOptimize(gx);
    benchmark::DoNotOptimize(gy);
    benchmark::DoNotOptimize(gz);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TensorGradient);

template <int W>
void bench_tensor_gradient_batched(benchmark::State& state) {
  const auto& tab = q2_tabulation();
  alignas(kSimdAlign) Real u[27 * W], gx[27 * W], gy[27 * W], gz[27 * W];
  Rng rng(2);
  for (auto& v : u) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    tensor_kernel::tensor_gradient_batched<W>(tab.B1, tab.D1, u, gx, gy, gz);
    benchmark::DoNotOptimize(gx);
    benchmark::DoNotOptimize(gy);
    benchmark::DoNotOptimize(gz);
  }
  // Items = elements, so items/s is directly comparable to BM_TensorGradient.
  state.SetItemsProcessed(state.iterations() * W);
}
void BM_TensorGradientBatched4(benchmark::State& state) {
  bench_tensor_gradient_batched<4>(state);
}
void BM_TensorGradientBatched8(benchmark::State& state) {
  bench_tensor_gradient_batched<8>(state);
}
BENCHMARK(BM_TensorGradientBatched4);
BENCHMARK(BM_TensorGradientBatched8);

void BM_ElementGeometry(benchmark::State& state) {
  StructuredMesh mesh = bench_mesh(4);
  ElementGeometry g;
  Index e = 0;
  for (auto _ : state) {
    element_geometry(mesh, e, g);
    benchmark::DoNotOptimize(g);
    e = (e + 1) % mesh.num_elements();
  }
}
BENCHMARK(BM_ElementGeometry);

template <class Op>
void bench_operator_apply(benchmark::State& state, Index m,
                          int batch_width = 0) {
  StructuredMesh mesh = bench_mesh(m);
  SinkerParams sp;
  sp.mx = sp.my = sp.mz = m;
  QuadCoefficients coeff = sinker_coefficients(mesh, sp);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  std::unique_ptr<Op> op;
  if constexpr (std::is_constructible_v<Op, const StructuredMesh&,
                                        const QuadCoefficients&,
                                        const DirichletBc*, int>)
    op = std::make_unique<Op>(mesh, coeff, &bc, batch_width);
  else
    op = std::make_unique<Op>(mesh, coeff, &bc);
  Vector x(op->rows(), 1.0), y;
  bc.zero_constrained(x);
  for (auto _ : state) {
    op->apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_elements());
  state.counters["GF/s"] = benchmark::Counter(
      state.iterations() * op->cost_model().flops_per_element *
          double(mesh.num_elements()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_ApplyAsmb(benchmark::State& state) {
  bench_operator_apply<AsmbViscousOperator>(state, state.range(0));
}
void BM_ApplyMf(benchmark::State& state) {
  bench_operator_apply<MfViscousOperator>(state, state.range(0));
}
void BM_ApplyTensor(benchmark::State& state) {
  bench_operator_apply<TensorViscousOperator>(state, state.range(0));
}
void BM_ApplyTensorC(benchmark::State& state) {
  bench_operator_apply<TensorCViscousOperator>(state, state.range(0));
}
// Batched variants (arg = batch width; docs/KERNELS.md). Same mesh as the
// scalar Arg(8) rows, so time ratios are direct batching speedups.
void BM_ApplyMfBatched(benchmark::State& state) {
  bench_operator_apply<MfViscousOperator>(state, 8, int(state.range(0)));
}
void BM_ApplyTensorBatched(benchmark::State& state) {
  bench_operator_apply<TensorViscousOperator>(state, 8, int(state.range(0)));
}
void BM_ApplyTensorCBatched(benchmark::State& state) {
  bench_operator_apply<TensorCViscousOperator>(state, 8, int(state.range(0)));
}
BENCHMARK(BM_ApplyAsmb)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ApplyMf)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ApplyTensor)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ApplyTensorC)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ApplyMfBatched)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ApplyTensorBatched)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ApplyTensorCBatched)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PointLocation(benchmark::State& state) {
  StructuredMesh mesh = bench_mesh(8);
  Rng rng(3);
  std::vector<Vec3> pts;
  for (int i = 0; i < 1000; ++i)
    pts.push_back({rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95),
                   rng.uniform(0.05, 0.95)});
  std::size_t k = 0;
  for (auto _ : state) {
    PointLocation loc = locate_point(mesh, pts[k % pts.size()]);
    benchmark::DoNotOptimize(loc);
    ++k;
  }
}
BENCHMARK(BM_PointLocation);

void BM_MpmProjection(benchmark::State& state) {
  StructuredMesh mesh = bench_mesh(8);
  MaterialPoints points;
  layout_points(mesh, 3, [](const Vec3&) { return 0; }, points, 0.3);
  std::vector<Real> vals(points.size(), 1.0);
  std::vector<Real> out;
  for (auto _ : state) {
    project_to_quadrature(mesh, points, vals, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_MpmProjection);

} // namespace

BENCHMARK_MAIN();
