// Job specification for the serve fleet (docs/SERVICE.md).
//
// A job spec is a flat JSON object mixing three key families: serve-level
// fields (name, priority, cores, steps, dt, cfl), model fields (-model and
// its parameters, shared with the CLI driver through ptatin/model_select),
// and the unified solver configuration keys (ptatin/config.hpp). Parsing is
// strict: every key must be registered in the Options::describe() registry,
// so a typo is a typed error with near-miss suggestions instead of a job
// that silently runs the default configuration.
//
// The canonical digest hashes the *resolved* result-determining parameters —
// defaults are filled in before hashing, and JSON key order never reaches
// the hash — so field-order permutations and explicitly-spelled defaults map
// to the same cache entry, while name/priority/cores/checkpoint cadence
// (proven result-invariant) are excluded and never fragment the cache.
#pragma once

#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/types.hpp"
#include "obs/json.hpp"
#include "ptatin/config.hpp"
#include "ptatin/model.hpp"

namespace ptatin::serve {

struct JobSpec {
  std::string name;  ///< display label ("" = fleet assigns job-N)
  int priority = 0;  ///< scheduling class; higher runs first
  int cores = 1;     ///< thread budget while running (admission control)
  int steps = 5;     ///< steps to integrate
  Real dt0 = 0.002;  ///< first-step / fallback dt (driver -dt)
  Real cfl = 0.25;   ///< CFL number for suggested dt

  Options options;     ///< the full flat option set (model + solver keys)
  SolverConfig config; ///< parsed + resolved solver configuration

  /// Register the serve-level option descriptions (name/priority/cores and
  /// the run keys shared with the driver) for help text and validation.
  static void describe_options();

  /// Parse a job spec object. Throws Error on non-object input, non-scalar
  /// fields, unknown keys (with suggestions), or invalid budgets.
  static JobSpec from_json(const obs::JsonValue& obj);
  static JobSpec from_json_text(const std::string& text);

  /// The resolved result-determining parameters in fixed key order: the
  /// digest pre-image. Excludes name, priority, cores, and checkpoint knobs.
  obs::JsonValue canonical_json() const;

  /// Content-addressed cache key: hex FNV-1a of canonical_json().dump().
  std::string digest() const;

  /// Build this job's model exactly as the CLI driver would.
  ModelSetup build_model(int& vertical_axis) const;
};

/// Parse a batch file: a JSON array of job objects, or {"jobs": [...]}.
/// Errors are prefixed with the offending 1-based job index.
std::vector<JobSpec> parse_job_batch(const std::string& text);

} // namespace ptatin::serve
