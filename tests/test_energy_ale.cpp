// Unit tests for the energy equation (Q1 SUPG) and the ALE mesh update.
#include <gtest/gtest.h>

#include <cmath>

#include "ale/mesh_update.hpp"
#include "energy/supg.hpp"
#include "fem/dofmap.hpp"

namespace ptatin {
namespace {

Vector zero_velocity(const StructuredMesh& mesh) {
  return Vector(num_velocity_dofs(mesh), 0.0);
}

Vector uniform_velocity(const StructuredMesh& mesh, const Vec3& v) {
  Vector u(num_velocity_dofs(mesh), 0.0);
  for (Index n = 0; n < mesh.num_nodes(); ++n)
    for (int c = 0; c < 3; ++c) u[3 * n + c] = v[c];
  return u;
}

// --- energy -------------------------------------------------------------------

TEST(Energy, SteadyStateLinearProfile) {
  // Pure diffusion with T=1 at bottom, T=0 at top: steady state is linear.
  StructuredMesh mesh = StructuredMesh::box(2, 2, 4, {0, 0, 0}, {1, 1, 1});
  EnergySolver solver(mesh, /*kappa=*/1.0);
  VertexBc bc(mesh.num_vertices());
  for (Index vj = 0; vj < mesh.vy(); ++vj)
    for (Index vi = 0; vi < mesh.vx(); ++vi) {
      bc.constrain(mesh.vertex_index(vi, vj, 0), 1.0);
      bc.constrain(mesh.vertex_index(vi, vj, mesh.vz() - 1), 0.0);
    }
  Vector T(mesh.num_vertices(), 0.5);
  Vector u = zero_velocity(mesh);
  // March to steady state with large steps.
  for (int s = 0; s < 30; ++s) solver.step(u, 10.0, bc, T);

  for (Index vk = 0; vk < mesh.vz(); ++vk) {
    const Real z = Real(vk) / Real(mesh.vz() - 1);
    EXPECT_NEAR(T[mesh.vertex_index(1, 1, vk)], 1.0 - z, 1e-6);
  }
}

TEST(Energy, ConservesUniformTemperature) {
  // T constant with matching BCs stays constant under any flow.
  StructuredMesh mesh = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  EnergySolver solver(mesh, 0.01);
  VertexBc bc(mesh.num_vertices());
  for (Index vj = 0; vj < mesh.vy(); ++vj)
    for (Index vi = 0; vi < mesh.vx(); ++vi) {
      bc.constrain(mesh.vertex_index(vi, vj, 0), 2.0);
      bc.constrain(mesh.vertex_index(vi, vj, mesh.vz() - 1), 2.0);
    }
  Vector T(mesh.num_vertices(), 2.0);
  Vector u = uniform_velocity(mesh, {0.3, -0.2, 0.0}); // tangential flow
  solver.step(u, 0.1, bc, T);
  for (Index v = 0; v < mesh.num_vertices(); ++v)
    EXPECT_NEAR(T[v], 2.0, 1e-9);
}

TEST(Energy, AdvectionTransportsFront) {
  // Advect a step profile in +x; the downstream temperature must rise.
  StructuredMesh mesh = StructuredMesh::box(8, 2, 2, {0, 0, 0}, {1, 1, 1});
  EnergySolver solver(mesh, 1e-6);
  VertexBc bc(mesh.num_vertices());
  // Inflow boundary (x=0): hot.
  for (Index vk = 0; vk < mesh.vz(); ++vk)
    for (Index vj = 0; vj < mesh.vy(); ++vj)
      bc.constrain(mesh.vertex_index(0, vj, vk), 1.0);

  Vector T(mesh.num_vertices(), 0.0);
  for (Index vk = 0; vk < mesh.vz(); ++vk)
    for (Index vj = 0; vj < mesh.vy(); ++vj)
      T[mesh.vertex_index(0, vj, vk)] = 1.0;

  Vector u = uniform_velocity(mesh, {1.0, 0, 0});
  for (int s = 0; s < 4; ++s) solver.step(u, 0.1, bc, T);

  // After t=0.4, the front (x ~ 0.4) has passed the vertex at x=0.25.
  const Index probe_up = mesh.vertex_index(2, 1, 1);   // x = 0.25
  const Index probe_down = mesh.vertex_index(7, 1, 1); // x = 0.875
  EXPECT_GT(T[probe_up], 0.5);
  EXPECT_LT(T[probe_down], 0.3);
}

TEST(Energy, SupgSuppressesOscillations) {
  // Strongly advective transport of a sharp front: solution stays within
  // physical bounds (small overshoot tolerated, catastrophic wiggles not).
  StructuredMesh mesh = StructuredMesh::box(10, 2, 2, {0, 0, 0}, {1, 1, 1});
  EnergySolver solver(mesh, 1e-8); // Pe >> 1
  VertexBc bc(mesh.num_vertices());
  for (Index vk = 0; vk < mesh.vz(); ++vk)
    for (Index vj = 0; vj < mesh.vy(); ++vj)
      bc.constrain(mesh.vertex_index(0, vj, vk), 1.0);
  Vector T(mesh.num_vertices(), 0.0);
  Vector u = uniform_velocity(mesh, {1.0, 0, 0});
  EnergySolveStats st{};
  for (int s = 0; s < 5; ++s) st = solver.step(u, 0.05, bc, T);
  EXPECT_GT(st.tau_max, 0.0); // stabilization active
  for (Index v = 0; v < mesh.num_vertices(); ++v) {
    EXPECT_GT(T[v], -0.15);
    EXPECT_LT(T[v], 1.15);
  }
}

// --- ALE -----------------------------------------------------------------------

TEST(Ale, SurfaceRisesWithUpwardFlow) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  Vector u = uniform_velocity(mesh, {0, 0, 0.1});
  AleOptions opts;
  opts.vertical_axis = 2;
  AleStats st = update_mesh_free_surface(mesh, u, 0.5, opts);
  EXPECT_NEAR(st.max_surface_displacement, 0.05, 1e-12);
  // Top nodes moved to z = 1.05; interior redistributed uniformly.
  const Index top = mesh.node_index(4, 4, mesh.nz() - 1);
  EXPECT_NEAR(mesh.node_coord(top)[2], 1.05, 1e-12);
  const Index mid = mesh.node_index(4, 4, (mesh.nz() - 1) / 2);
  EXPECT_NEAR(mesh.node_coord(mid)[2], 0.525, 1e-12);
  EXPECT_GT(st.min_detj_after, 0.0);
}

TEST(Ale, BottomStaysFixed) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  Vector u = uniform_velocity(mesh, {0, 0, -0.2});
  AleOptions opts;
  AleStats st = update_mesh_free_surface(mesh, u, 0.25, opts);
  (void)st;
  for (Index j = 0; j < mesh.ny(); ++j)
    for (Index i = 0; i < mesh.nx(); ++i)
      EXPECT_DOUBLE_EQ(mesh.node_coord(mesh.node_index(i, j, 0))[2], 0.0);
}

TEST(Ale, NonUniformSurfaceVelocityCreatesTopography) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  Vector u(num_velocity_dofs(mesh), 0.0);
  // Upwelling in the center.
  for (Index n = 0; n < mesh.num_nodes(); ++n) {
    const Vec3 x = mesh.node_coord(n);
    u[3 * n + 2] = std::sin(M_PI * x[0]) * std::sin(M_PI * x[1]);
  }
  AleOptions opts;
  update_mesh_free_surface(mesh, u, 0.1, opts);
  const Real z_center =
      mesh.node_coord(mesh.node_index(4, 4, mesh.nz() - 1))[2];
  const Real z_edge = mesh.node_coord(mesh.node_index(0, 0, mesh.nz() - 1))[2];
  EXPECT_GT(z_center, z_edge + 0.05);
  EXPECT_NEAR(z_edge, 1.0, 1e-12);
}

TEST(Ale, VerticalAxisY) {
  // The rifting model uses y as the vertical axis (§V-A).
  StructuredMesh mesh = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  Vector u(num_velocity_dofs(mesh), 0.0);
  for (Index n = 0; n < mesh.num_nodes(); ++n) u[3 * n + 1] = 0.2;
  AleOptions opts;
  opts.vertical_axis = 1;
  update_mesh_free_surface(mesh, u, 0.5, opts);
  const Index top = mesh.node_index(3, mesh.ny() - 1, 3);
  EXPECT_NEAR(mesh.node_coord(top)[1], 1.1, 1e-12);
}

TEST(Ale, MinJacobianDetectsHealthyMesh) {
  StructuredMesh mesh = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  EXPECT_GT(min_jacobian_determinant(mesh), 0.0);
  mesh.deform([](const Vec3& x) {
    return Vec3{x[0] + 0.1 * x[1], x[1], x[2]};
  });
  EXPECT_GT(min_jacobian_determinant(mesh), 0.0);
}

} // namespace
} // namespace ptatin
