// Content-addressed result store for the serve fleet (docs/SERVICE.md).
//
// Completed jobs are stored under their canonical config digest, in memory
// (LRU, bounded by capacity) and — when a directory is configured — on disk
// as <dir>/<digest>.json, published atomically (tmp + rename) so a fleet
// killed mid-write never leaves a torn record. A memory miss falls back to
// disk and promotes the record back into the LRU, which is what makes
// resubmitted specs cache hits across fleet restarts. Evicting past capacity
// removes both the memory entry and the backing file, and every transition
// is counted (hits / misses / insertions / evictions / disk loads).
//
// All operations are thread-safe; worker threads insert concurrently while
// the scheduler thread looks up.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/json.hpp"

namespace ptatin::serve {

class ResultCache {
public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long insertions = 0;
    long long evictions = 0;
    long long disk_loads = 0; ///< hits served by promoting a disk record
  };

  /// dir = "" keeps the cache memory-only (no durability).
  ResultCache(std::string dir, std::size_t capacity);

  /// The stored record for `digest`, or nullopt (counted as hit or miss).
  std::optional<obs::JsonValue> lookup(const std::string& digest);

  /// Store (or refresh) the record for `digest`, evicting the least
  /// recently used entries beyond capacity.
  void insert(const std::string& digest, obs::JsonValue record);

  std::size_t size() const;
  Stats stats() const;
  const std::string& dir() const { return dir_; }

private:
  struct Entry {
    obs::JsonValue record;
    std::list<std::string>::iterator lru_it;
  };

  void touch_locked(Entry& e, const std::string& digest);
  void insert_locked(const std::string& digest, obs::JsonValue record,
                     bool write_disk);
  void evict_over_capacity_locked();
  std::string path_for(const std::string& digest) const;

  std::string dir_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::string> lru_; ///< most recently used at the front
  std::unordered_map<std::string, Entry> map_;
  Stats stats_;
};

} // namespace ptatin::serve
