// Tests for the extension/ablation features: the Gauss-Lobatto collocated
// operator (§III-D spectral-element remark), the Uzawa member of the SCR
// family (§III-B), and property sweeps across viscosity contrasts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ksp/cg.hpp"
#include "saddle/stokes_solver.hpp"
#include "stokes/viscous_ops_gl.hpp"

namespace ptatin {
namespace {

QuadCoefficients constant_coeff(const StructuredMesh& mesh, Real eta) {
  QuadCoefficients c(mesh.num_elements());
  for (Index e = 0; e < mesh.num_elements(); ++e)
    for (int q = 0; q < kQuadPerEl; ++q) c.eta(e, q) = eta;
  return c;
}

Vector random_vector(Index n, unsigned seed) {
  Vector v(n);
  Rng rng(seed);
  for (Index i = 0; i < n; ++i) v[i] = rng.uniform(-1, 1);
  return v;
}

// --- Gauss-Lobatto ablation back-end -----------------------------------------

TEST(GaussLobatto, SymmetricOperator) {
  StructuredMesh mesh = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = constant_coeff(mesh, 2.0);
  TensorGLViscousOperator op(mesh, coeff, nullptr);
  Vector x = random_vector(op.rows(), 1), y = random_vector(op.rows(), 2);
  Vector ax, ay;
  op.apply(x, ax);
  op.apply(y, ay);
  EXPECT_NEAR(y.dot(ax), x.dot(ay), 1e-10 * std::abs(y.dot(ax)) + 1e-12);
}

TEST(GaussLobatto, AnnihilatesRigidModes) {
  StructuredMesh mesh = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {2, 1, 1});
  QuadCoefficients coeff = constant_coeff(mesh, 1.0);
  TensorGLViscousOperator op(mesh, coeff, nullptr);
  Vector u(op.rows(), 0.0);
  for (Index n = 0; n < mesh.num_nodes(); ++n) {
    const Vec3 x = mesh.node_coord(n);
    u[3 * n + 0] = 1.0 - x[1]; // translation + rotation about z
    u[3 * n + 1] = x[0];
    u[3 * n + 2] = -2.0;
  }
  Vector au;
  op.apply(u, au);
  EXPECT_LT(au.norm_inf(), 1e-10);
}

TEST(GaussLobatto, UnderintegratesRelativeToGauss) {
  // The paper's point: GL is cheaper but "not sufficiently accurate" — the
  // operator deviates from the fully integrated one even on a uniform mesh
  // (degree-4 integrands vs degree-3 exactness), and more on deformed ones.
  StructuredMesh uniform = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  StructuredMesh deformed = uniform;
  deformed.deform([](const Vec3& x) {
    return Vec3{x[0] + 0.08 * std::sin(3 * x[1]), x[1] + 0.06 * x[2] * x[0],
                x[2]};
  });

  auto relative_diff = [&](const StructuredMesh& mesh) {
    QuadCoefficients coeff = constant_coeff(mesh, 1.0);
    TensorViscousOperator gauss(mesh, coeff, nullptr);
    TensorGLViscousOperator gl(mesh, coeff, nullptr);
    Vector x = random_vector(gauss.rows(), 3);
    Vector yg, yl, d;
    gauss.apply(x, yg);
    gl.apply(x, yl);
    d.copy_from(yl);
    d.axpy(-1.0, yg);
    return d.norm2() / yg.norm2();
  };

  const Real uni = relative_diff(uniform);
  const Real def = relative_diff(deformed);
  EXPECT_GT(uni, 1e-4); // genuinely a different operator
  // Random inputs are rich in the high-frequency modes where
  // underintegration is most visible: the deviation is O(1) but bounded
  // (the operator stays SPD and solvable — next test).
  EXPECT_LT(uni, 1.5);
  EXPECT_GT(def, uni * 0.9); // deformation does not improve matters
}

TEST(GaussLobatto, CheaperFlopModelThanTensor) {
  StructuredMesh mesh = StructuredMesh::box(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = constant_coeff(mesh, 1.0);
  TensorViscousOperator tens(mesh, coeff, nullptr);
  TensorGLViscousOperator gl(mesh, coeff, nullptr);
  EXPECT_LT(gl.cost_model().flops_per_element,
            tens.cost_model().flops_per_element);
}

TEST(GaussLobatto, UsableAsSolverOperator) {
  // Despite underintegration, the GL operator is SPD and solvable; CG with
  // Jacobi converges on it (it is a legitimate discretization, just a less
  // accurate one).
  StructuredMesh mesh = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = constant_coeff(mesh, 1.0);
  DirichletBc bc(num_velocity_dofs(mesh));
  for (auto f : {MeshFace::kXMin, MeshFace::kXMax, MeshFace::kYMin,
                 MeshFace::kYMax, MeshFace::kZMin, MeshFace::kZMax})
    constrain_no_slip(mesh, f, bc);
  TensorGLViscousOperator op(mesh, coeff, &bc);
  Vector b = random_vector(op.rows(), 4);
  bc.zero_constrained(b);
  Vector x;
  JacobiPc pc(op.diagonal());
  KrylovSettings s;
  s.rtol = 1e-8;
  s.max_it = 500;
  SolveStats st = cg_solve(op, pc, b, x, s);
  EXPECT_TRUE(st.converged);
}

// --- Uzawa ------------------------------------------------------------------

class UzawaTest : public ::testing::Test {
protected:
  void SetUp() override {
    mesh_ = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
    bc_ = sinker_boundary_conditions(mesh_);
    coeff_ = QuadCoefficients(mesh_.num_elements());
    for (Index e = 0; e < mesh_.num_elements(); ++e) {
      ElementGeometry g;
      element_geometry(mesh_, e, g);
      for (int q = 0; q < kQuadPerEl; ++q) {
        // Off-center dense blob: guarantees a genuinely nonzero flow (a
        // flat layer would be in hydrostatic equilibrium with u ~ 0).
        const Real dx = g.xq[q][0] - 0.35, dy = g.xq[q][1] - 0.5,
                   dz = g.xq[q][2] - 0.6;
        const bool in = dx * dx + dy * dy + dz * dz < 0.25 * 0.25;
        coeff_.eta(e, q) = in ? 10.0 : 1.0;
        coeff_.rho(e, q) = in ? 1.2 : 1.0;
      }
    }
  }
  StructuredMesh mesh_;
  DirichletBc bc_;
  QuadCoefficients coeff_;
};

TEST_F(UzawaTest, ConvergesAndMatchesFullSpace) {
  StokesSolverOptions so;
  so.gmg.levels = 2;
  so.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  so.coarse_bjacobi_blocks = 1;
  so.krylov.rtol = 1e-8;
  StokesSolver solver(mesh_, coeff_, bc_, so);
  Vector f = assemble_body_force(mesh_, coeff_, {0, 0, -9.8});

  StokesSolveResult full = solver.solve(f);
  ASSERT_TRUE(full.stats.converged);

  Vector rhs = solver.op().build_rhs(f);
  PressureMassSchur schur(mesh_, coeff_);
  Vector x;
  UzawaOptions uo;
  uo.rtol = 1e-6;
  UzawaStats st =
      uzawa_solve(solver.op(), solver.velocity_pc(), schur, rhs, x, uo);
  EXPECT_TRUE(st.converged);
  EXPECT_GT(st.inner_iterations, st.iterations); // inner solves dominate

  Vector u, p;
  solver.op().extract_u(x, u);
  Vector diff;
  diff.copy_from(u);
  diff.axpy(-1.0, full.u);
  EXPECT_LT(diff.norm2(), 1e-3 * full.u.norm2());
}

TEST_F(UzawaTest, ResidualHistoryDecreases) {
  StokesSolverOptions so;
  so.gmg.levels = 2;
  so.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  so.coarse_bjacobi_blocks = 1;
  StokesSolver solver(mesh_, coeff_, bc_, so);
  Vector f = assemble_body_force(mesh_, coeff_, {0, 0, -9.8});
  Vector rhs = solver.op().build_rhs(f);
  PressureMassSchur schur(mesh_, coeff_);
  Vector x;
  UzawaOptions uo;
  uo.rtol = 1e-4;
  uo.max_it = 50;
  UzawaStats st =
      uzawa_solve(solver.op(), solver.velocity_pc(), schur, rhs, x, uo);
  ASSERT_GE(st.history.size(), 3u);
  EXPECT_LT(st.history.back(), st.history.front());
}

// --- property sweeps -----------------------------------------------------------

class ContrastSweep : public ::testing::TestWithParam<double> {};

TEST_P(ContrastSweep, SolverConvergesAcrossContrasts) {
  const Real contrast = GetParam();
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = sinker_boundary_conditions(mesh);
  QuadCoefficients coeff(mesh.num_elements());
  for (Index e = 0; e < mesh.num_elements(); ++e) {
    ElementGeometry g;
    element_geometry(mesh, e, g);
    for (int q = 0; q < kQuadPerEl; ++q) {
      const Real dx = g.xq[q][0] - 0.5, dy = g.xq[q][1] - 0.5,
                 dz = g.xq[q][2] - 0.5;
      const bool in = dx * dx + dy * dy + dz * dz < 0.09;
      coeff.eta(e, q) = in ? 1.0 : 1.0 / contrast;
      coeff.rho(e, q) = in ? 1.2 : 1.0;
    }
  }
  StokesSolverOptions so;
  so.gmg.levels = 2;
  so.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  so.coarse_bjacobi_blocks = 1;
  so.krylov.max_it = 600;
  StokesSolver solver(mesh, coeff, bc, so);
  Vector f = assemble_body_force(mesh, coeff, {0, 0, -9.8});
  StokesSolveResult res = solver.solve(f);
  EXPECT_TRUE(res.stats.converged) << "contrast " << contrast;
}

INSTANTIATE_TEST_SUITE_P(Contrasts, ContrastSweep,
                         ::testing::Values(1.0, 10.0, 100.0, 1000.0));

} // namespace
} // namespace ptatin
