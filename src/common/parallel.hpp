// Shared-memory parallel primitives.
//
// The paper runs MPI across nodes; intra-node performance (the subject of
// Tables I–III) is bandwidth- vs compute-bound kernel behaviour. We expose a
// thin OpenMP layer so every kernel is written once and runs threaded; the
// subdomain-decomposition layer (src/fem/decomposition.hpp) reproduces the
// rank-local structure of the MPI code.
#pragma once

#include <cstddef>

#include "common/types.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ptatin {

/// Number of threads the parallel_for loops will use.
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the thread count (benchmarks sweep this as the "cores" axis).
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Parallel loop over [0, n). Body must be safe for concurrent invocation on
/// disjoint indices.
template <class F>
inline void parallel_for(Index n, F&& body) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (Index i = 0; i < n; ++i) body(i);
#else
  for (Index i = 0; i < n; ++i) body(i);
#endif
}

/// Parallel reduction (sum) over [0, n).
template <class F>
inline Real parallel_reduce_sum(Index n, F&& body) {
  Real sum = 0.0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (Index i = 0; i < n; ++i) sum += body(i);
#else
  for (Index i = 0; i < n; ++i) sum += body(i);
#endif
  return sum;
}

/// Parallel reduction (max) over [0, n).
template <class F>
inline Real parallel_reduce_max(Index n, F&& body) {
  Real m = 0.0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(max : m)
  for (Index i = 0; i < n; ++i) {
    Real v = body(i);
    if (v > m) m = v;
  }
#else
  for (Index i = 0; i < n; ++i) {
    Real v = body(i);
    if (v > m) m = v;
  }
#endif
  return m;
}

} // namespace ptatin
