// Tests for the nonlinear Stokes solver: Picard/Newton convergence, line
// search, Eisenstat-Walker behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "nonlin/newton.hpp"
#include "rheology/flow_law.hpp"
#include "stokes/fields.hpp"

namespace ptatin {
namespace {

/// Shear-thinning power-law coefficient updater (no material points: the
/// law is evaluated directly at quadrature points, which is sufficient to
/// exercise the nonlinear machinery).
CoefficientUpdater power_law_updater(const StructuredMesh& mesh, Real n_exp) {
  ArrheniusParams ap;
  ap.eta0 = 1.0;
  ap.n = n_exp;
  ap.eps0 = 1.0;
  ap.eta_min = 1e-4;
  ap.eta_max = 1e4;
  auto law = std::make_shared<ArrheniusLaw>(ap);
  return [&mesh, law](const Vector& u, const Vector&, bool newton,
                      QuadCoefficients& coeff) {
    std::vector<StrainRateSample> s;
    evaluate_strain_rates(mesh, u, s);
    if (newton && !coeff.has_newton()) coeff.allocate_newton();
    for (Index e = 0; e < mesh.num_elements(); ++e)
      for (int q = 0; q < kQuadPerEl; ++q) {
        const auto& sq = s[e * kQuadPerEl + q];
        RheologyState st;
        st.j2 = sq.j2;
        const ViscosityEval ve = law->viscosity(st);
        coeff.eta(e, q) = ve.eta;
        coeff.rho(e, q) = 1.0;
        if (newton) {
          coeff.deta(e, q) = ve.deta_dj2;
          for (int t = 0; t < kSymSize; ++t) coeff.d0(e, q)[t] = sq.d[t];
        }
      }
  };
}

NonlinearOptions small_options() {
  NonlinearOptions o;
  o.linear.gmg.levels = 2;
  o.linear.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  o.linear.coarse_bjacobi_blocks = 1;
  o.rtol = 1e-6;
  return o;
}

/// Driven-shear problem: top lid moves in +x, everything else no-slip.
DirichletBc lid_bc(const StructuredMesh& mesh, Real lid_speed) {
  DirichletBc bc(num_velocity_dofs(mesh));
  for (auto f : {MeshFace::kXMin, MeshFace::kXMax, MeshFace::kYMin,
                 MeshFace::kYMax, MeshFace::kZMin})
    constrain_no_slip(mesh, f, bc);
  constrain_face_component(mesh, MeshFace::kZMax, 0, lid_speed, bc);
  constrain_face_component(mesh, MeshFace::kZMax, 1, 0.0, bc);
  constrain_face_component(mesh, MeshFace::kZMax, 2, 0.0, bc);
  return bc;
}

BcFactory lid_bc_factory() {
  return [](const StructuredMesh& m) { return lid_bc(m, 0.0); };
}

TEST(Nonlinear, NewtonianProblemConvergesInOneIteration) {
  // n = 1: the problem is linear; a single Picard step must converge.
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = lid_bc(mesh, 1.0);
  NonlinearOptions opts = small_options();
  opts.linear.bc_factory = lid_bc_factory();
  // Fixed tight linear tolerance: with Eisenstat-Walker the first solve is
  // deliberately loose and takes extra outer iterations even for a linear
  // problem.
  opts.eisenstat_walker = false;
  opts.linear.krylov.rtol = 1e-9;
  NonlinearStokesSolver solver(mesh, bc, opts);

  Vector u(num_velocity_dofs(mesh), 0.0), p;
  bc.set_values(u);
  Vector f(num_velocity_dofs(mesh), 0.0);
  NonlinearResult res = solver.solve(power_law_updater(mesh, 1.0), f, u, p);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2);
}

TEST(Nonlinear, PowerLawConverges) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = lid_bc(mesh, 1.0);
  NonlinearOptions opts = small_options();
  opts.linear.bc_factory = lid_bc_factory();
  NonlinearStokesSolver solver(mesh, bc, opts);

  Vector u(num_velocity_dofs(mesh), 0.0), p;
  bc.set_values(u);
  Vector f(num_velocity_dofs(mesh), 0.0);
  NonlinearResult res = solver.solve(power_law_updater(mesh, 3.0), f, u, p);
  EXPECT_TRUE(res.converged);
  // Residual history is monotone enough to show real convergence.
  ASSERT_GE(res.residual_history.size(), 2u);
  EXPECT_LT(res.residual_history.back(),
            1e-5 * res.residual_history.front());
}

TEST(Nonlinear, NewtonFasterThanPicardTerminally) {
  // The paper's motivation (§III-A): Picard stagnates, Newton accelerates
  // the terminal phase.
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = lid_bc(mesh, 1.0);
  Vector f(num_velocity_dofs(mesh), 0.0);

  auto run = [&](bool newton) {
    NonlinearOptions opts = small_options();
    opts.linear.bc_factory = lid_bc_factory();
    opts.use_newton = newton;
    opts.rtol = 1e-8;
    opts.max_it = 40;
    NonlinearStokesSolver solver(mesh, bc, opts);
    Vector u(num_velocity_dofs(mesh), 0.0), p;
    bc.set_values(u);
    return solver.solve(power_law_updater(mesh, 4.0), f, u, p);
  };
  NonlinearResult newton = run(true);
  NonlinearResult picard = run(false);
  EXPECT_TRUE(newton.converged);
  EXPECT_LE(newton.iterations, picard.iterations);
}

TEST(Nonlinear, EisenstatWalkerLoosensEarlySolves) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = lid_bc(mesh, 1.0);
  Vector f(num_velocity_dofs(mesh), 0.0);

  auto total_krylov = [&](bool ew) {
    NonlinearOptions opts = small_options();
    opts.linear.bc_factory = lid_bc_factory();
    opts.eisenstat_walker = ew;
    if (!ew) opts.linear.krylov.rtol = 1e-8; // fixed tight tolerance
    NonlinearOptions o2 = opts;
    NonlinearStokesSolver solver(mesh, bc, o2);
    Vector u(num_velocity_dofs(mesh), 0.0), p;
    bc.set_values(u);
    NonlinearResult r = solver.solve(power_law_updater(mesh, 3.0), f, u, p);
    EXPECT_TRUE(r.converged);
    return r.total_krylov_iterations;
  };
  // Adaptive forcing must not cost more Krylov iterations than fixed-tight.
  EXPECT_LE(total_krylov(true), total_krylov(false));
}

TEST(Nonlinear, StepLengthsRecordedAndPositive) {
  StructuredMesh mesh = StructuredMesh::box(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = lid_bc(mesh, 1.0);
  NonlinearOptions opts = small_options();
  opts.linear.bc_factory = lid_bc_factory();
  NonlinearStokesSolver solver(mesh, bc, opts);
  Vector u(num_velocity_dofs(mesh), 0.0), p;
  bc.set_values(u);
  Vector f(num_velocity_dofs(mesh), 0.0);
  NonlinearResult res = solver.solve(power_law_updater(mesh, 2.0), f, u, p);
  ASSERT_EQ(res.step_lengths.size(), static_cast<std::size_t>(res.iterations));
  for (Real l : res.step_lengths) {
    EXPECT_GT(l, 0.0);
    EXPECT_LE(l, 1.0);
  }
}

TEST(Nonlinear, ResidualOfExactSolutionIsZero) {
  // For the linear (n=1) problem, the residual at the converged state
  // matches the final history entry.
  StructuredMesh mesh = StructuredMesh::box(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = lid_bc(mesh, 1.0);
  NonlinearOptions opts = small_options();
  opts.linear.bc_factory = lid_bc_factory();
  opts.rtol = 1e-10;
  NonlinearStokesSolver solver(mesh, bc, opts);
  Vector u(num_velocity_dofs(mesh), 0.0), p;
  bc.set_values(u);
  Vector f(num_velocity_dofs(mesh), 0.0);
  NonlinearResult res = solver.solve(power_law_updater(mesh, 1.0), f, u, p);
  ASSERT_TRUE(res.converged);

  QuadCoefficients coeff(mesh.num_elements());
  power_law_updater(mesh, 1.0)(res.u, res.p, false, coeff);
  Vector fu, fp;
  solver.residual(coeff, f, res.u, res.p, fu, fp);
  const Real norm = std::sqrt(fu.dot(fu) + fp.dot(fp));
  EXPECT_NEAR(norm, res.residual_history.back(), 1e-10);
}

} // namespace
} // namespace ptatin
