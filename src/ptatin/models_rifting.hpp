// The §V continental rifting and breakup model (scaled for a workstation).
//
// Domain (nondimensionalized from 1200 km x 200 km x 600 km; y vertical):
// three lithologies — "mantle" (lower 160 km), "weak crust" (20 km) and
// "strong crust" (20 km) — with Arrhenius temperature/strain-rate-dependent
// viscosity, Drucker-Prager stress limiters in the crustal layers, Boussinesq
// buoyancy, a central damage seed along the back face, symmetric extension in
// x (and optionally a slight shortening in z), a free surface on top, and the
// SUPG energy equation.
#pragma once

#include "ptatin/model.hpp"

namespace ptatin {

struct RiftingParams {
  Index mx = 24, my = 8, mz = 12; ///< paper: 256 x 32 x 128 on 512 cores
  Real lx = 6.0, ly = 1.0, lz = 3.0; ///< 1200 x 200 x 600 km nondimensional
  Real extension_rate = 1.0;      ///< cm/yr-scale, nondimensionalized
  Real shortening_rate = 0.0;     ///< z-shortening for the oblique case (ii)
  Real mantle_depth = 0.8;        ///< lower 160 km
  Real weak_crust_top = 0.9;      ///< 20 km weak crust above the mantle
  Real damage_amplitude = 0.8;
  Real damage_half_width = 0.25;  ///< x half-width of the damage zone
  Real damage_z_extent = 0.8;     ///< depth of the damage zone from the back face
  /// Initial random topography perturbation (fraction of ly). The paper's
  /// first time steps fail the Newton cap because "an initial buoyancy
  /// structure ... is out of equilibrium with the initially horizontal
  /// topography" (§V); the perturbation reproduces that disequilibrium in
  /// the scaled model.
  Real initial_topography = 0.02;
  std::uint64_t seed = 7;
  // Rheology knobs.
  Real eta_mantle = 1e-2;
  Real eta_weak_crust = 1.0;
  Real eta_strong_crust = 10.0;
  Real cohesion = 4.0;
  Real cohesion_softened = 1.0;
  Real friction_angle = 0.5236; ///< 30 degrees
  Real kappa = 1e-3;
};

ModelSetup make_rifting_model(const RiftingParams& p);

} // namespace ptatin
