// Thermal convection example: Boussinesq buoyancy coupling between the
// Stokes solver and the SUPG energy equation — the temperature-dependent
// density channel of §II-A/§V-A exercised on a classic heated-from-below
// convection cell (no compositional contrast, a single lithology).
//
//   ./build/examples/thermal_convection [-m 8] [-steps 6] [-ra 1e4]
#include <cmath>
#include <cstdio>

#include "common/options.hpp"
#include "common/rng.hpp"
#include "ptatin/context.hpp"
#include "ptatin/vtk.hpp"

using namespace ptatin;

int main(int argc, char** argv) {
  Options opts = Options::from_args(argc, argv);
  const Index m = opts.get_index("m", 8);
  const int steps = opts.get_int("steps", 10);
  // Effective Rayleigh number knob: Ra ~ rho0 g alpha dT L^3 / (eta kappa).
  const Real ra = opts.get_real("ra", 1e5);
  const Real kappa = 1e-2;
  const Real alpha = ra * kappa / 9.8; // with eta = rho0 = dT = L = 1

  ModelSetup setup;
  setup.name = "thermal-convection";
  setup.mesh = StructuredMesh::box(m, m, m, {0, 0, 0}, {1, 1, 1});
  setup.bc = sinker_boundary_conditions(setup.mesh); // free-slip, free top
  setup.bc_factory = [](const StructuredMesh& mm) {
    return sinker_boundary_conditions(mm);
  };
  setup.gravity = {0, 0, -9.8};
  setup.vertical_axis = 2;

  // One Boussinesq material: rho = rho0 (1 - alpha (T - T0)).
  setup.materials.add(
      std::make_shared<ConstantViscosityLaw>(1.0, 1.0, alpha, 0.5));
  setup.lithology_of = [](const Vec3&) { return 0; };

  setup.use_energy = true;
  setup.kappa = kappa;
  // Conductive profile with a random seed perturbation.
  auto rng = std::make_shared<Rng>(11);
  setup.initial_temperature = [rng](const Vec3& x) {
    return (1.0 - x[2]) + 0.02 * rng->uniform(-1.0, 1.0) *
                              std::sin(M_PI * x[2]);
  };
  setup.temperature_bc = [](const StructuredMesh& mm, VertexBc& bc) {
    for (Index vj = 0; vj < mm.vy(); ++vj)
      for (Index vi = 0; vi < mm.vx(); ++vi) {
        bc.constrain(mm.vertex_index(vi, vj, 0), 1.0);            // hot floor
        bc.constrain(mm.vertex_index(vi, vj, mm.vz() - 1), 0.0);  // cold top
      }
  };

  PtatinOptions po;
  po.points_per_dim = 2;
  po.update_mesh = false; // fixed mesh: pure convection study
  po.nonlinear.max_it = 2;
  po.nonlinear.rtol = 1e-3;
  po.nonlinear.use_newton = false;
  po.nonlinear.linear.gmg.levels = 2;
  po.nonlinear.linear.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  po.nonlinear.linear.coarse_bjacobi_blocks = 1;
  PtatinContext ctx(std::move(setup), po);

  std::printf("thermal convection: Ra ~ %.1e, %lld^3 elements\n", ra,
              (long long)m);
  for (int s = 1; s <= steps; ++s) {
    Real dt = std::min(ctx.suggest_dt(0.3), Real(0.05));
    if (s == 1 || dt <= 0) dt = 0.01;
    StepReport rep = ctx.step(dt);

    // Diagnostics: RMS velocity and mean upward advective heat flux.
    const auto& mesh = ctx.mesh();
    const Vector& u = ctx.velocity();
    Real urms = 0, flux = 0;
    for (Index n = 0; n < mesh.num_nodes(); ++n) {
      for (int c = 0; c < 3; ++c) urms += u[3 * n + c] * u[3 * n + c];
    }
    urms = std::sqrt(urms / mesh.num_nodes());
    for (Index vk = 0; vk < mesh.vz(); ++vk)
      for (Index vj = 0; vj < mesh.vy(); ++vj)
        for (Index vi = 0; vi < mesh.vx(); ++vi) {
          const Index node = mesh.vertex_to_node(vi, vj, vk);
          flux += u[3 * node + 2] *
                  ctx.temperature()[mesh.vertex_index(vi, vj, vk)];
        }
    flux /= Real(mesh.num_vertices());

    std::printf("step %2d: dt=%.3e  krylov=%ld  u_rms=%.3e  <w T>=%.3e\n", s,
                dt, rep.nonlinear.total_krylov_iterations, urms, flux);
  }
  std::printf("rising hot plumes => positive mean advective flux <w T>.\n");
  return 0;
}
