// Slab subduction example: a stiff dense plate with a dipping slab segment
// sinks and rolls back through a weak mantle — the §I motivating application
// class, driven through the full MPM + nonlinear Stokes + ALE pipeline, with
// the slab-tip depth tracked as the headline observable.
//
//   ./build/examples/slab_subduction [-steps 6] [-mx 16 -my 4 -mz 8]
//                                    [-output /tmp/slab]
#include <cstdio>
#include <string>

#include "common/options.hpp"
#include "ptatin/context.hpp"
#include "ptatin/diagnostics.hpp"
#include "ptatin/models_subduction.hpp"
#include "ptatin/vtk.hpp"

using namespace ptatin;

int main(int argc, char** argv) {
  Options opts = Options::from_args(argc, argv);
  SubductionParams sp;
  sp.mx = opts.get_index("mx", 16);
  sp.my = opts.get_index("my", 4);
  sp.mz = opts.get_index("mz", 8);
  const int steps = opts.get_int("steps", 6);
  const std::string prefix = opts.get_string("output", "/tmp/slab");

  ModelSetup setup = make_subduction_model(sp);
  PtatinOptions po;
  po.points_per_dim = 3;
  po.nonlinear.max_it = 4;
  po.nonlinear.rtol = 1e-2;
  po.nonlinear.linear.gmg.levels = 2;
  po.nonlinear.linear.coarse_solve = GmgCoarseSolve::kAmg;
  po.nonlinear.linear.amg.coarse_size = 400;
  PtatinContext ctx(std::move(setup), po);

  const Real tip0 = slab_tip_depth(ctx.setup(), ctx.points());
  std::printf("slab subduction: %lldx%lldx%lld elements, %lld points, "
              "initial slab tip depth z=%.3f\n",
              (long long)sp.mx, (long long)sp.my, (long long)sp.mz,
              (long long)ctx.points().size(), tip0);

  write_vtk_points(prefix + "_pts_0000.vtk", ctx.points());
  for (int s = 1; s <= steps; ++s) {
    Real dt = ctx.suggest_dt(0.25);
    if (s == 1 || dt <= 0) dt = opts.get_real("dt", 0.002);
    StepReport rep = ctx.step(dt);

    const Real tip = slab_tip_depth(ctx.setup(), ctx.points());
    const FlowStats fs =
        compute_flow_stats(ctx.mesh(), ctx.coefficients(), ctx.velocity());
    std::printf("step %2d: dt=%.2e newton=%d krylov=%ld tip z=%.4f "
                "u_rms=%.3e dissipation=%.3e (%.1f s)\n",
                s, dt, rep.nonlinear.iterations,
                rep.nonlinear.total_krylov_iterations, tip, fs.u_rms,
                fs.dissipation, rep.seconds);

    char tag[32];
    std::snprintf(tag, sizeof tag, "_%04d.vtk", s);
    write_vtk_points(prefix + "_pts" + tag, ctx.points());
  }
  const Real tip1 = slab_tip_depth(ctx.setup(), ctx.points());
  std::printf("slab tip sank from z=%.3f to z=%.3f\n", tip0, tip1);
  std::printf("VTK output written with prefix %s\n", prefix.c_str());
  return tip1 < tip0 ? 0 : 1; // the slab must actually subduct
}
