// FLOP / byte accounting for the performance model of §III-D (Table I).
//
// The paper's Table I compares analytic flop counts and data-motion estimates
// of the assembled, matrix-free, tensor-product, and stored-coefficient
// operator applications. Each operator back-end registers its per-application
// flop and byte model here; benchmarks combine these with measured wall time
// to report GF/s and arithmetic intensity exactly as the paper does.
#pragma once

#include <map>
#include <string>

#include "common/timing.hpp"
#include "common/types.hpp"

namespace ptatin {

/// Per-event performance record: accumulated time, flops, and modeled bytes.
struct PerfEvent {
  AccumTimer timer;
  double flops = 0.0;
  double bytes_perfect = 0.0;  ///< modeled traffic assuming perfect cache reuse
  double bytes_pessimal = 0.0; ///< modeled traffic assuming no vector reuse

  double gflops_per_sec() const {
    double t = timer.total();
    return t > 0 ? flops / t * 1e-9 : 0.0;
  }
  double seconds() const { return timer.total(); }
  long calls() const { return timer.count(); }
  void reset() {
    timer.reset();
    flops = bytes_perfect = bytes_pessimal = 0.0;
  }
};

/// Global registry of named performance events (e.g. "MatMult", "PCApply",
/// "MGSmooth", "StokesSolve"). Not thread-safe for concurrent event creation;
/// events are created during setup, accumulated from the serial control path.
class PerfRegistry {
public:
  static PerfRegistry& instance();

  PerfEvent& event(const std::string& name) { return events_[name]; }
  const std::map<std::string, PerfEvent>& events() const { return events_; }
  void reset_all();

  /// Formatted summary table (name, calls, seconds, GF/s).
  std::string summary() const;

private:
  std::map<std::string, PerfEvent> events_;
};

/// RAII scope that times into a named global event and adds a flop count.
class PerfScope {
public:
  PerfScope(const std::string& name, double flops = 0.0,
            double bytes_perfect = 0.0, double bytes_pessimal = 0.0)
      : ev_(PerfRegistry::instance().event(name)) {
    ev_.flops += flops;
    ev_.bytes_perfect += bytes_perfect;
    ev_.bytes_pessimal += bytes_pessimal;
    ev_.timer.start();
  }
  ~PerfScope() { ev_.timer.stop(); }
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

private:
  PerfEvent& ev_;
};

} // namespace ptatin
