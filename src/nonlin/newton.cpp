#include "nonlin/newton.hpp"

#include <algorithm>
#include <cmath>

#include "common/faultinject.hpp"
#include "common/log.hpp"
#include "common/timing.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/report.hpp"

namespace ptatin {

NonlinearStokesSolver::NonlinearStokesSolver(const StructuredMesh& mesh,
                                             const DirichletBc& bc,
                                             const NonlinearOptions& opts)
    : mesh_(mesh), bc_(bc), opts_(opts) {
  b_full_ = assemble_gradient_block(mesh);
}

void NonlinearStokesSolver::residual(const QuadCoefficients& coeff,
                                     const Vector& f, const Vector& u,
                                     const Vector& p, Vector& fu,
                                     Vector& fp) const {
  // F_u = A(eta) u + B p - f, with the raw (unmasked) bilinear form: u
  // carries the boundary values, so constrained rows are simply zeroed (the
  // boundary equation u_bc = g_bc is satisfied by construction).
  TensorViscousOperator a_raw(mesh_, coeff, nullptr);
  a_raw.apply(u, fu);
  Vector bp;
  b_full_.mult(p, bp);
  fu.axpy(1.0, bp);
  fu.axpy(-1.0, f);
  bc_.zero_constrained(fu);

  // F_p = B^T u.
  b_full_.mult_transpose(u, fp);
}

NonlinearResult NonlinearStokesSolver::solve(
    const CoefficientUpdater& update_coefficients, const Vector& f, Vector& u,
    Vector& p) const {
  PerfScope span("NonlinearSolve");
  Timer timer;
  NonlinearResult res;
  const Index nu = num_velocity_dofs(mesh_);
  const Index np = num_pressure_dofs(mesh_);
  PT_ASSERT(u.size() == nu);
  if (p.size() != np) p.resize(np);

  QuadCoefficients coeff(mesh_.num_elements());
  Vector fu, fp;

  auto residual_norm = [&](const Vector& uu, const Vector& pp,
                           QuadCoefficients& cc) {
    update_coefficients(uu, pp, false, cc);
    residual(cc, f, uu, pp, fu, fp);
    const Real nrm_u = fu.norm2();
    const Real nrm_p = fp.norm2();
    return std::sqrt(nrm_u * nrm_u + nrm_p * nrm_p);
  };

  Real fnorm = fault::corrupt("nonlin.rnorm", residual_norm(u, p, coeff));
  const Real f0 = fnorm;
  res.residual_history.push_back(fnorm);
  const Real target = std::max(opts_.rtol * f0, opts_.atol);
  Real lin_rtol = opts_.eisenstat_walker ? opts_.ew_rtol0
                                         : opts_.linear.krylov.rtol;
  Real lin_rtol_prev = lin_rtol;
  int total_it = 0;

  // One pass of the Picard/Newton iteration with a fresh iteration budget.
  // Returns kNone on convergence or an exhausted budget; any other value is
  // a detected failure the escalation policy below acts on.
  auto attempt = [&](bool with_newton, bool with_ew) -> NonlinearFailure {
    int stagnant = 0;
    for (int it = 0; it < opts_.max_it && fnorm > target; ++it) {
      const bool newton_step =
          with_newton && total_it >= opts_.picard_iterations;

      // Refresh coefficients at the current state (with Newton terms when
      // the Krylov operator should carry them).
      update_coefficients(u, p, newton_step, coeff);

      // Linear solver + preconditioner setup on the fresh Picard
      // coefficients.
      StokesSolverOptions lopts = opts_.linear;
      lopts.newton_operator = newton_step;
      if (with_ew) lopts.krylov.rtol = lin_rtol;
      // The GMG hierarchy is rebuilt from scratch every iteration, but its
      // Galerkin RAP sparsity patterns only depend on the mesh — hand each
      // rebuild the cross-iteration cache so the coarse operators refresh
      // numeric-only (bitwise identical to the from-scratch product).
      lopts.gmg.setup_cache = &gmg_cache_;
      PerfScope step_span("NewtonStep");
      StokesSolver linear(mesh_, coeff, bc_, lopts);

      // Right-hand side: -F with homogeneous constrained rows.
      residual(coeff, f, u, p, fu, fp);
      fu.scale(-1.0);
      fp.scale(-1.0);
      Vector rhs;
      linear.op().combine(fu, fp, rhs);

      StokesSolveResult lin = linear.solve_stacked(rhs);
      res.total_krylov_iterations += lin.stats.iterations;
      res.krylov_per_iteration.push_back(lin.stats.iterations);

      // A fatally diverged inner solve (NaN, dtol blow-up, breakdown)
      // produced a garbage direction: stop before it poisons the state.
      // kDivergedMaxIt is fine — inexact Newton tolerates truncated solves.
      if (is_fatal(lin.stats.reason) || fault::fires("nonlin.linsolve")) {
        res.failure_detail =
            std::string("linear solve: ") + lin.stats.reason_message();
        return NonlinearFailure::kLinearFailure;
      }

      // Backtracking line search on ||F||.
      Real lambda = 1.0;
      Real fnorm_new = fnorm;
      Vector u_trial(nu), p_trial(np);
      QuadCoefficients coeff_trial(mesh_.num_elements());
      bool accepted = false;
      for (int ls = 0; ls <= opts_.line_search_max; ++ls) {
        u_trial.copy_from(u);
        u_trial.axpy(lambda, lin.u);
        p_trial.copy_from(p);
        p_trial.axpy(lambda, lin.p);
        fnorm_new = residual_norm(u_trial, p_trial, coeff_trial);
        if (fnorm_new <= (1.0 - opts_.line_search_alpha * lambda) * fnorm) {
          accepted = true;
          break;
        }
        lambda *= 0.5;
      }
      // Accept the last trial even without sufficient decrease (the next
      // iteration's Picard refresh often recovers).
      u.copy_from(u_trial);
      p.copy_from(p_trial);
      res.step_lengths.push_back(lambda);

      const Real fnorm_prev = fnorm;
      fnorm = fault::corrupt("nonlin.rnorm", fnorm_new);
      res.residual_history.push_back(fnorm);
      ++total_it;
      log_debug("nonlinear it ", total_it, ": |F| = ", fnorm,
                " lambda = ", lambda, accepted ? "" : " (forced)");

      if (!std::isfinite(fnorm)) {
        res.failure_detail = "nonlinear residual is NaN/Inf";
        return NonlinearFailure::kNanResidual;
      }
      if (opts_.divtol > 0 && fnorm > opts_.divtol * f0) {
        res.failure_detail = "||F|| exceeded divtol * ||F_0||";
        return NonlinearFailure::kDiverged;
      }
      stagnant = (!accepted && fnorm >= fnorm_prev) ? stagnant + 1 : 0;
      if (opts_.stagnation_window > 0 &&
          stagnant >= opts_.stagnation_window) {
        res.failure_detail = "line search made no progress";
        return NonlinearFailure::kStagnation;
      }

      // Eisenstat-Walker choice 2 forcing for the next solve.
      if (with_ew && fnorm_prev > 0) {
        Real eta = opts_.ew_gamma *
                   std::pow(fnorm / fnorm_prev, opts_.ew_alpha);
        const Real safeguard =
            opts_.ew_gamma * std::pow(lin_rtol_prev, opts_.ew_alpha);
        if (safeguard > 0.1) eta = std::max(eta, safeguard);
        lin_rtol_prev = lin_rtol;
        lin_rtol = std::clamp(eta, opts_.ew_rtol_min, opts_.ew_rtol_max);
      }
    }
    return NonlinearFailure::kNone;
  };

  NonlinearFailure failure = NonlinearFailure::kNone;
  if (std::isfinite(fnorm)) {
    failure = attempt(opts_.use_newton, opts_.eisenstat_walker);
  } else {
    res.failure_detail = "initial nonlinear residual is NaN/Inf";
    failure = NonlinearFailure::kNanResidual;
  }

  // Escalation policy: a failed Newton path restarts as Picard with tight,
  // fixed linear forcing — the robust (if slow) linearization. NaN is not
  // retried here: the state itself is poisoned, and recovery belongs to the
  // timestep tier (rollback + smaller dt). An SDC sentinel trip is not a
  // linearization problem either — changing to Picard would mask the
  // corruption AND perturb the healed trajectory; the timestep tier owns the
  // same-dt replay (docs/ROBUSTNESS.md).
  const bool sdc_trip =
      res.failure_detail.find("diverged_sdc") != std::string::npos;
  if (failure != NonlinearFailure::kNone &&
      failure != NonlinearFailure::kNanResidual && !sdc_trip &&
      opts_.fallback_to_picard && opts_.use_newton) {
    log_warn("nonlinear solve: ", to_string(failure), " (",
             res.failure_detail, ") — restarting with Picard");
    obs::MetricsRegistry::instance()
        .counter("safeguard.newton_fallbacks")
        .inc();
    res.picard_fallbacks = 1;
    res.failure_detail.clear();
    failure = attempt(/*with_newton=*/false, /*with_ew=*/false);
  }

  res.iterations = total_it;
  res.converged = std::isfinite(fnorm) && fnorm <= target;
  res.failure = res.converged ? NonlinearFailure::kNone : failure;
  if (res.failure != NonlinearFailure::kNone)
    obs::MetricsRegistry::instance()
        .counter("safeguard.nonlin_failures")
        .inc();

  auto& metrics = obs::MetricsRegistry::instance();
  metrics.counter("nonlin.solves").inc();
  metrics.counter("nonlin.iterations").inc(total_it);
  if (auto& report = obs::SolverReport::global(); report.enabled()) {
    obs::NewtonRecord rec;
    rec.label = opts_.use_newton ? "newton" : "picard";
    rec.converged = res.converged;
    rec.failure = res.failure == NonlinearFailure::kNone
                      ? ""
                      : res.failure_detail.empty()
                            ? std::string(to_string(res.failure))
                            : std::string(to_string(res.failure)) + " (" +
                                  res.failure_detail + ")";
    rec.fallbacks = res.picard_fallbacks;
    rec.iterations = res.iterations;
    rec.total_krylov_iterations = res.total_krylov_iterations;
    rec.seconds = timer.seconds();
    rec.residual_history = res.residual_history;
    rec.krylov_per_iteration = res.krylov_per_iteration;
    rec.step_lengths = res.step_lengths;
    report.add_newton(std::move(rec));
  }

  res.u = std::move(u);
  res.p = std::move(p);
  // Keep caller copies in sync (u/p were moved out).
  u.copy_from(res.u);
  p.copy_from(res.p);
  return res;
}

} // namespace ptatin
