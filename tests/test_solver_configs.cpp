// Configuration-level tests: hierarchy introspection, coarse-solver
// variants, perf instrumentation, and Krylov edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/perf.hpp"
#include "common/rng.hpp"
#include "ksp/cg.hpp"
#include "ksp/gcr.hpp"
#include "ksp/gmres.hpp"
#include "la/coo.hpp"
#include "ptatin/models_sinker.hpp"
#include "saddle/stokes_solver.hpp"

namespace ptatin {
namespace {

QuadCoefficients blob_coeff(const StructuredMesh& mesh) {
  QuadCoefficients c(mesh.num_elements());
  for (Index e = 0; e < mesh.num_elements(); ++e) {
    ElementGeometry g;
    element_geometry(mesh, e, g);
    for (int q = 0; q < kQuadPerEl; ++q) {
      const Real dx = g.xq[q][0] - 0.4, dz = g.xq[q][2] - 0.6;
      const bool in = dx * dx + dz * dz < 0.06;
      c.eta(e, q) = in ? 5.0 : 0.5;
      c.rho(e, q) = in ? 1.3 : 1.0;
    }
  }
  return c;
}

// --- level heuristic ---------------------------------------------------------

TEST(GmgLevels, SuggestionRespectsCoarsenability) {
  EXPECT_EQ(suggest_gmg_levels(4), 1);  // 4 -> 2 too small
  EXPECT_EQ(suggest_gmg_levels(6), 2);  // 6 -> 3
  EXPECT_EQ(suggest_gmg_levels(8), 2);  // 8 -> 4 (-> 2 too small)
  EXPECT_EQ(suggest_gmg_levels(12), 3); // 12 -> 6 -> 3
  EXPECT_EQ(suggest_gmg_levels(16), 3); // 16 -> 8 -> 4, capped at 3
  EXPECT_EQ(suggest_gmg_levels(16, 4), 3); // 4 -> 2 is still too small
  EXPECT_EQ(suggest_gmg_levels(24, 4), 4); // 24 -> 12 -> 6 -> 3
  EXPECT_EQ(suggest_gmg_levels(7), 1);  // odd: cannot coarsen
}

// --- hierarchy introspection -----------------------------------------------------

TEST(GmgIntrospection, LevelDofsShrinkAndGalerkinTimed) {
  StructuredMesh mesh = StructuredMesh::box(8, 8, 8, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = blob_coeff(mesh);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  GmgOptions opts;
  opts.levels = 2;
  GmgHierarchy mg(
      mesh, coeff, bc, opts,
      [](const StructuredMesh& m) { return sinker_boundary_conditions(m); },
      [](const CsrMatrix& a) -> std::unique_ptr<Preconditioner> {
        return std::make_unique<BlockJacobiPc>(a, 1, SubdomainSolve::kLu);
      });
  ASSERT_EQ(mg.num_levels(), 2);
  EXPECT_GT(mg.level_dofs(1), mg.level_dofs(0));
  EXPECT_EQ(mg.level_dofs(1), num_velocity_dofs(mesh));
  // Matrix-free finest: the level below is rediscretized, no Galerkin time.
  EXPECT_DOUBLE_EQ(mg.galerkin_setup_seconds(), 0.0);
}

TEST(GmgIntrospection, AssembledFinestAccumulatesGalerkinTime) {
  StructuredMesh mesh = StructuredMesh::box(8, 8, 8, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = blob_coeff(mesh);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  GmgOptions opts;
  opts.levels = 2;
  opts.fine_kernel.type = FineOperatorType::kAssembled;
  GmgHierarchy mg(
      mesh, coeff, bc, opts,
      [](const StructuredMesh& m) { return sinker_boundary_conditions(m); },
      [](const CsrMatrix& a) -> std::unique_ptr<Preconditioner> {
        return std::make_unique<BlockJacobiPc>(a, 1, SubdomainSolve::kLu);
      });
  EXPECT_GT(mg.galerkin_setup_seconds(), 0.0);
}

// --- coarse solver variants -------------------------------------------------------

TEST(CoarseSolve, AsmCgConfigurationConverges) {
  // The rifting-run coarse solver (§V-A): CG + ASM(ILU0, overlap 4).
  StructuredMesh mesh = StructuredMesh::box(8, 8, 8, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = blob_coeff(mesh);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  StokesSolverOptions so;
  so.gmg.levels = 2;
  so.coarse_solve = GmgCoarseSolve::kAsmCg;
  so.coarse_bjacobi_blocks = 4;
  so.krylov.max_it = 400;
  StokesSolver solver(mesh, coeff, bc, so);
  Vector f = assemble_body_force(mesh, coeff, {0, 0, -9.8});
  StokesSolveResult res = solver.solve(f);
  EXPECT_TRUE(res.stats.converged);
}

TEST(CoarseSolve, VariantsAgreeOnSolution) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = blob_coeff(mesh);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  Vector f = assemble_body_force(mesh, coeff, {0, 0, -9.8});

  auto solve_with = [&](GmgCoarseSolve cs) {
    StokesSolverOptions so;
    so.gmg.levels = 2;
    so.coarse_solve = cs;
    so.coarse_bjacobi_blocks = 2;
    so.krylov.rtol = 1e-8;
    so.krylov.max_it = 500;
    StokesSolver solver(mesh, coeff, bc, so);
    return solver.solve(f);
  };
  StokesSolveResult a = solve_with(GmgCoarseSolve::kBJacobiLu);
  StokesSolveResult b = solve_with(GmgCoarseSolve::kAmg);
  StokesSolveResult c = solve_with(GmgCoarseSolve::kAsmCg);
  ASSERT_TRUE(a.stats.converged && b.stats.converged && c.stats.converged);
  // Same linear system, tight tolerance: solutions agree.
  Vector d1, d2;
  d1.copy_from(b.u);
  d1.axpy(-1.0, a.u);
  d2.copy_from(c.u);
  d2.axpy(-1.0, a.u);
  EXPECT_LT(d1.norm2(), 1e-4 * a.u.norm2());
  EXPECT_LT(d2.norm2(), 1e-4 * a.u.norm2());
}

// --- instrumentation -----------------------------------------------------------

TEST(Perf, StokesSolvePopulatesEvents) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = blob_coeff(mesh);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  StokesSolverOptions so;
  so.gmg.levels = 2;
  so.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  so.coarse_bjacobi_blocks = 1;
  StokesSolver solver(mesh, coeff, bc, so);
  Vector f = assemble_body_force(mesh, coeff, {0, 0, -9.8});

  auto& reg = PerfRegistry::instance();
  reg.reset_all();
  StokesSolveResult res = solver.solve(f);
  ASSERT_TRUE(res.stats.converged);
  EXPECT_GT(reg.event("MatMult(Stokes)").calls(), res.stats.iterations - 1);
  EXPECT_GT(reg.event("PCApply(Stokes)").calls(), 0);
  EXPECT_GT(reg.event("PCApply(GMG)").calls(), 0);
  EXPECT_GT(reg.event("MatMult(Stokes)").seconds(), 0.0);
  // The summary table formats without throwing and mentions the events.
  const std::string summary = reg.summary();
  EXPECT_NE(summary.find("MatMult(Stokes)"), std::string::npos);
}

// --- Krylov edge cases ------------------------------------------------------------

TEST(KrylovEdge, IdentityOperatorOneIteration) {
  const Index n = 20;
  ShellOperator eye(n, n, [](const Vector& x, Vector& y) { y.copy_from(x); });
  IdentityPc pc;
  Vector b(n, 3.0), x;
  KrylovSettings s;
  s.rtol = 1e-12;
  SolveStats st = gcr_solve(eye, pc, b, x, s);
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.iterations, 1);
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(x[i], 3.0, 1e-12);
}

TEST(KrylovEdge, GmresRestartOne) {
  // restart=1 degenerates to a steepest-descent-like method; must still
  // converge on an SPD system (slowly).
  CooMatrix coo(10, 10);
  for (Index i = 0; i < 10; ++i) coo.add(i, i, Real(i + 1));
  CsrMatrix a = coo.to_csr();
  MatrixOperator op(&a);
  IdentityPc pc;
  Vector b(10, 1.0), x;
  KrylovSettings s;
  s.restart = 1;
  s.rtol = 1e-8;
  s.max_it = 2000;
  SolveStats st = gmres_solve(op, pc, b, x, s);
  EXPECT_TRUE(st.converged);
}

TEST(KrylovEdge, MaxItZeroReturnsInitialGuess) {
  CooMatrix coo(5, 5);
  for (Index i = 0; i < 5; ++i) coo.add(i, i, 2.0);
  CsrMatrix a = coo.to_csr();
  MatrixOperator op(&a);
  IdentityPc pc;
  Vector b(5, 1.0), x(5, 0.25);
  KrylovSettings s;
  s.max_it = 0;
  SolveStats st = cg_solve(op, pc, b, x, s);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.iterations, 0);
  for (Index i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(x[i], 0.25);
}

TEST(KrylovEdge, GcrReportsBreakdownOnZeroImage) {
  // Operator with a nontrivial kernel aligned with the preconditioned
  // residual: A z = 0 triggers the breakdown path, not an infinite loop.
  const Index n = 4;
  ShellOperator op(n, n, [](const Vector&, Vector& y) {
    y.resize(4);
    y.set_all(0.0);
  });
  IdentityPc pc;
  Vector b(n, 1.0), x;
  KrylovSettings s;
  s.max_it = 10;
  SolveStats st = gcr_solve(op, pc, b, x, s);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.reason, ConvergedReason::kDivergedBreakdown);
}

} // namespace
} // namespace ptatin
