// Block lower-triangular preconditioner for the coupled Stokes system
// (Eq. 17):
//
//   P = [ J~_uu   0  ]      z_u = J~_uu^{-1} r_u
//       [ J_pu   S~  ]      z_p = S~^{-1} (r_p - J_pu z_u)
//
// J~_uu^{-1} is the multigrid V-cycle (or any velocity preconditioner) and
// S~ is the viscosity-scaled pressure mass matrix, applied with the sign
// convention S ~ -J_pu J_uu^{-1} J_up (negative definite), i.e.
// z_p = -Mp^{-1} (r_p - J_pu z_u).
#pragma once

#include <memory>

#include "ksp/pc.hpp"
#include "saddle/stokes_operator.hpp"
#include "stokes/blocks.hpp"

namespace ptatin {

struct BlockPcOptions {
  /// Drop the coupling term J_pu z_u (block-diagonal variant, ablation).
  bool block_diagonal = false;
  /// Sign applied to the Schur stage output (S ~ -J_pu J_uu^{-1} J_up is
  /// negative definite, hence the default -1; +1 kept for ablation).
  Real schur_sign = -1.0;
};

class BlockTriangularPc : public Preconditioner {
public:
  /// `velocity_pc` approximates J_uu^{-1} (e.g. a GmgHierarchy);
  /// `schur` is the viscosity-scaled pressure mass matrix.
  BlockTriangularPc(const StokesOperator& op, const Preconditioner& velocity_pc,
                    const PressureMassSchur& schur,
                    const BlockPcOptions& opts = {});

  void apply(const Vector& r, Vector& z) const override;

private:
  const StokesOperator& op_;
  const Preconditioner& vpc_;
  const PressureMassSchur& schur_;
  BlockPcOptions opts_;
  mutable Vector ru_, rp_, zu_, zp_, tu_;
};

} // namespace ptatin
