// Property-based sweeps (parameterized gtest): randomized meshes,
// coefficient fields, and vectors probing the invariants every module must
// hold regardless of input.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "fem/point_location.hpp"
#include "la/coo.hpp"
#include "la/ilu0.hpp"
#include "mg/prolongation.hpp"
#include "mpm/projection.hpp"
#include "stokes/viscous_ops.hpp"

namespace ptatin {
namespace {

// --- randomized operator properties over (seed, deformation amplitude) ------

class OperatorProps
    : public ::testing::TestWithParam<std::tuple<unsigned, double>> {
protected:
  void SetUp() override {
    const unsigned seed = std::get<0>(GetParam());
    const Real amp = std::get<1>(GetParam());
    mesh_ = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
    Rng rng(seed);
    const Real f1 = rng.uniform(1, 4), f2 = rng.uniform(1, 4);
    mesh_.deform([amp, f1, f2](const Vec3& x) {
      return Vec3{x[0] + amp * std::sin(f1 * x[1]),
                  x[1] + amp * std::cos(f2 * x[2]),
                  x[2] + amp * x[0] * x[1]};
    });
    coeff_ = QuadCoefficients(mesh_.num_elements());
    for (Index e = 0; e < mesh_.num_elements(); ++e)
      for (int q = 0; q < kQuadPerEl; ++q)
        coeff_.eta(e, q) = std::pow(10.0, rng.uniform(-3, 3));
    seed_ = seed;
  }
  StructuredMesh mesh_;
  QuadCoefficients coeff_;
  unsigned seed_ = 0;
};

TEST_P(OperatorProps, TensorMatchesMf) {
  MfViscousOperator mf(mesh_, coeff_, nullptr);
  TensorViscousOperator tens(mesh_, coeff_, nullptr);
  Rng rng(seed_ + 1000);
  Vector x(mf.rows());
  for (Index i = 0; i < x.size(); ++i) x[i] = rng.uniform(-1, 1);
  Vector y1, y2;
  mf.apply(x, y1);
  tens.apply(x, y2);
  const Real scale = y1.norm_inf() + 1e-300;
  for (Index i = 0; i < y1.size(); ++i)
    ASSERT_NEAR(y2[i], y1[i], 1e-10 * scale);
}

TEST_P(OperatorProps, SymmetricAndSemidefinite) {
  TensorViscousOperator op(mesh_, coeff_, nullptr);
  Rng rng(seed_ + 2000);
  Vector x(op.rows()), y(op.rows());
  for (Index i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
  }
  Vector ax, ay;
  op.apply(x, ax);
  op.apply(y, ay);
  EXPECT_NEAR(y.dot(ax), x.dot(ay), 1e-9 * std::abs(y.dot(ax)) + 1e-11);
  EXPECT_GE(x.dot(ax), -1e-10);
}

TEST_P(OperatorProps, DiagonalIsPositive) {
  TensorViscousOperator op(mesh_, coeff_, nullptr);
  Vector d = compute_viscous_diagonal(mesh_, coeff_);
  for (Index i = 0; i < d.size(); ++i) ASSERT_GT(d[i], 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OperatorProps,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0.0, 0.04, 0.08)));

// --- prolongation properties over mesh sizes --------------------------------

class ProlongationProps : public ::testing::TestWithParam<int> {};

TEST_P(ProlongationProps, AdjointIdentity) {
  // <P xc, yf> == <xc, P^T yf> for random vectors — R = P^T holds exactly.
  const Index m = GetParam();
  StructuredMesh fine = StructuredMesh::box(m, m, m, {0, 0, 0}, {1, 1, 1});
  StructuredMesh coarse = fine.coarsen();
  CsrMatrix P = build_velocity_prolongation(fine, coarse, nullptr);
  Rng rng(10 + m);
  Vector xc(P.cols()), yf(P.rows());
  for (Index i = 0; i < xc.size(); ++i) xc[i] = rng.uniform(-1, 1);
  for (Index i = 0; i < yf.size(); ++i) yf[i] = rng.uniform(-1, 1);
  Vector pxc, pty;
  P.mult(xc, pxc);
  P.mult_transpose(yf, pty);
  EXPECT_NEAR(pxc.dot(yf), xc.dot(pty), 1e-10 * std::abs(pxc.dot(yf)));
}

TEST_P(ProlongationProps, RowsAreConvexCombinations) {
  const Index m = GetParam();
  StructuredMesh fine = StructuredMesh::box(m, m, m, {0, 0, 0}, {1, 1, 1});
  StructuredMesh coarse = fine.coarsen();
  CsrMatrix P = build_velocity_prolongation(fine, coarse, nullptr);
  for (Index r = 0; r < P.rows(); ++r) {
    Real sum = 0;
    for (Index k = P.row_ptr()[r]; k < P.row_ptr()[r + 1]; ++k) {
      ASSERT_GE(P.values()[k], 0.0);
      ASSERT_LE(P.values()[k], 1.0);
      sum += P.values()[k];
    }
    ASSERT_NEAR(sum, 1.0, 1e-14);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProlongationProps, ::testing::Values(2, 4, 6));

// --- projection properties over point densities ------------------------------

class ProjectionProps : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionProps, MaximumPrincipleHolds) {
  // Eq. 12 is a convex combination: vertex values stay within the range of
  // the point data for any point density.
  const int ppd = GetParam();
  StructuredMesh mesh = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  MaterialPoints pts;
  layout_points(mesh, ppd, [](const Vec3&) { return 0; }, pts, 0.4,
                /*seed=*/ppd);
  Rng rng(100 + ppd);
  std::vector<Real> vals(pts.size());
  Real lo = 1e300, hi = -1e300;
  for (Index i = 0; i < pts.size(); ++i) {
    vals[i] = rng.uniform(-5, 7);
    lo = std::min(lo, vals[i]);
    hi = std::max(hi, vals[i]);
  }
  ProjectionResult pr = project_to_vertices(mesh, pts, vals);
  EXPECT_EQ(pr.empty_vertices, 0);
  for (Index v = 0; v < mesh.num_vertices(); ++v) {
    ASSERT_GE(pr.vertex_values[v], lo - 1e-12);
    ASSERT_LE(pr.vertex_values[v], hi + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, ProjectionProps,
                         ::testing::Values(1, 2, 3, 4));

// --- point location over deformation amplitudes ------------------------------

class LocationProps : public ::testing::TestWithParam<double> {};

TEST_P(LocationProps, RoundTripThroughMapping) {
  const Real amp = GetParam();
  StructuredMesh mesh = StructuredMesh::box(5, 5, 5, {0, 0, 0}, {1, 1, 1});
  mesh.deform([amp](const Vec3& x) {
    return Vec3{x[0] + amp * std::sin(2 * x[1]) * x[2],
                x[1] + amp * std::cos(3 * x[0]), x[2] + amp * x[0] * x[1]};
  });
  Rng rng(int(amp * 1000) + 3);
  for (int t = 0; t < 60; ++t) {
    const Index e = rng.uniform_index(0, mesh.num_elements() - 1);
    const Vec3 xi{rng.uniform(-0.9, 0.9), rng.uniform(-0.9, 0.9),
                  rng.uniform(-0.9, 0.9)};
    const Vec3 x = mesh.map_to_physical(e, xi);
    const PointLocation loc = locate_point(mesh, x);
    ASSERT_TRUE(loc.found) << "amp " << amp;
    const Vec3 y = mesh.map_to_physical(loc.element, loc.xi);
    for (int d = 0; d < 3; ++d) ASSERT_NEAR(y[d], x[d], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, LocationProps,
                         ::testing::Values(0.0, 0.02, 0.05, 0.08));

// --- ILU(0) / CSR over random sparsity ---------------------------------------

class IluProps : public ::testing::TestWithParam<unsigned> {};

TEST_P(IluProps, PreconditionedResidualContracts) {
  Rng rng(GetParam());
  const Index n = 50;
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    Real rowsum = 0;
    for (Index j = 0; j < n; ++j) {
      if (i == j || rng.uniform() > 0.1) continue;
      const Real v = rng.uniform(-1, 1);
      coo.add(i, j, v);
      rowsum += std::abs(v);
    }
    coo.add(i, i, rowsum + 1.0);
  }
  CsrMatrix a = coo.to_csr();
  Ilu0 ilu(a);
  Vector b(n, 1.0), x, r;
  ilu.solve(b, x);
  a.mult(x, r);
  r.aypx(-1.0, b);
  EXPECT_LT(r.norm2(), 0.9 * b.norm2());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IluProps,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

} // namespace
} // namespace ptatin
