// Rigid-body modes: the near-nullspace of the viscous/elastic block.
//
// §III-C: "We provide the six rigid-body modes and set a strength threshold
// of 0.01." The modes (3 translations + 3 rotations) are built from node
// coordinates and seed the tentative prolongator of the smoothed-aggregation
// hierarchy.
#pragma once

#include <vector>

#include "fem/mesh.hpp"
#include "la/vector.hpp"

namespace ptatin {

/// Six rigid-body modes of a 3-component nodal field on the mesh
/// (size 3 * num_nodes each), shifted to the mesh centroid for conditioning.
std::vector<Vector> rigid_body_modes(const StructuredMesh& mesh);

/// Rigid-body modes from a raw coordinate array (3*nnodes, interleaved).
std::vector<Vector> rigid_body_modes(const std::vector<Real>& coords);

} // namespace ptatin
