#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

#include "obs/json.hpp"

namespace ptatin::obs {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuf& Tracer::local() {
  thread_local ThreadBuf* buf = nullptr;
  if (buf == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuf>());
    buffers_.back()->tid = static_cast<int>(buffers_.size()) - 1;
    buf = buffers_.back().get();
  }
  return *buf;
}

void Tracer::record(TraceEvent ev) { local().events.push_back(std::move(ev)); }

int Tracer::open_span() { return local().depth++; }

void Tracer::close_span() { --local().depth; }

int Tracer::thread_id() { return local().tid; }

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_)
      out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) n += buf->events.size();
  return n;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) buf->events.clear();
}

std::string Tracer::chrome_trace_json() const {
  // Streamed directly (not via JsonValue) — traces can hold 10^5+ events.
  const std::vector<TraceEvent> events = collect();
  std::string out;
  out.reserve(events.size() * 128 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    out += json_escape(ev.name);
    out += "\",\"cat\":\"ptatin\",\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += json_number(ev.tid);
    out += ",\"ts\":";
    out += json_number(ev.ts_us);
    out += ",\"dur\":";
    out += json_number(ev.dur_us);
    if (ev.flops > 0 || ev.bytes_perfect > 0 || ev.bytes_pessimal > 0) {
      out += ",\"args\":{\"flops\":";
      out += json_number(ev.flops);
      out += ",\"bytes_perfect\":";
      out += json_number(ev.bytes_perfect);
      out += ",\"bytes_pessimal\":";
      out += json_number(ev.bytes_pessimal);
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << chrome_trace_json();
  return bool(f);
}

} // namespace ptatin::obs
