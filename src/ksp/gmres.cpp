#include "ksp/gmres.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "ksp/sentinel.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"

namespace ptatin {

namespace {

/// Shared implementation of right-preconditioned (F)GMRES(m).
/// When `flexible` is true, the preconditioned vectors Z_j are stored and the
/// solution update uses Z (FGMRES, Saad '93); otherwise the update is
/// x += M^{-1} (V y), valid only for a fixed (linear) preconditioner.
SolveStats gmres_impl(const LinearOperator& a, const Preconditioner& pc,
                      const Vector& b, Vector& x, const KrylovSettings& s,
                      bool flexible) {
  PerfScope span(flexible ? "KSPSolve(FGMRES)" : "KSPSolve(GMRES)");
  SolveStats stats;
  const Index n = b.size();
  if (x.size() != n) x.resize(n);
  const int m = std::max(1, s.restart);

  std::vector<Vector> V(m + 1);
  std::vector<Vector> Z(flexible ? m : 0);
  // Hessenberg in column-major (j-th column has j+2 entries).
  std::vector<std::vector<Real>> H(m, std::vector<Real>(m + 1, 0.0));
  std::vector<Real> cs(m), sn(m), g(m + 1);

  Vector r(n), w(n), ztmp(n);
  Vector sx, sr, sw, sz; // sentinel scratch, sized on first use
  a.residual(b, x, r);
  Real rnorm = fault::corrupt("ksp.rnorm", r.norm2());
  stats.initial_residual = rnorm;
  const ConvergenceTest conv(s, rnorm);
  if (s.record_history) stats.history.push_back(rnorm);
  if (s.monitor) s.monitor(0, rnorm, &r);

  // Solve the cols x cols triangular system H y = g and add the resulting
  // Krylov correction to xs. Shared by the end-of-cycle update and the SDC
  // sentinel (which applies it to a scratch copy of x mid-cycle).
  auto apply_update = [&](int cols, Vector& xs, Vector& acc, Vector& tmp) {
    std::vector<Real> y(cols, 0.0);
    for (int i = cols - 1; i >= 0; --i) {
      Real sum = g[i];
      for (int k = i + 1; k < cols; ++k) sum -= H[k][i] * y[k];
      y[i] = sum / H[i][i];
    }
    if (flexible) {
      for (int i = 0; i < cols; ++i) xs.axpy(y[i], Z[i]);
    } else if (cols > 0) {
      // xs += M^{-1} (V y)
      acc.resize(n);
      acc.set_all(0.0);
      for (int i = 0; i < cols; ++i) acc.axpy(y[i], V[i]);
      tmp.resize(n);
      pc.apply(acc, tmp);
      xs.axpy(1.0, tmp);
    }
  };

  int total_it = 0;
  ConvergedReason reason = conv.test(rnorm, total_it);
  while (reason == ConvergedReason::kIterating) {
    // --- start (restart) cycle ---
    V[0].copy_from(r);
    V[0].scale(Real(1) / rnorm);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = rnorm;

    // j counts the completed Arnoldi columns of this cycle; a column that
    // breaks down is abandoned and the update below uses the j good ones.
    int j = 0;
    while (j < m && reason == ConvergedReason::kIterating) {
      // w = A M^{-1} v_j
      if (flexible) {
        pc.apply(V[j], Z[j]);
        a.apply(Z[j], w);
      } else {
        pc.apply(V[j], ztmp);
        a.apply(ztmp, w);
      }
      // Modified Gram–Schmidt.
      for (int i = 0; i <= j; ++i) {
        H[j][i] = w.dot(V[i]);
        w.axpy(-H[j][i], V[i]);
      }
      H[j][j + 1] = w.norm2();
      if (V[j + 1].size() != n) V[j + 1].resize(n);
      if (H[j][j + 1] > 0.0) {
        V[j + 1].copy_from(w);
        V[j + 1].scale(Real(1) / H[j][j + 1]);
      }

      // Apply accumulated Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const Real t = cs[i] * H[j][i] + sn[i] * H[j][i + 1];
        H[j][i + 1] = -sn[i] * H[j][i] + cs[i] * H[j][i + 1];
        H[j][i] = t;
      }
      // New rotation to annihilate H[j][j+1]. A vanishing column is a hard
      // breakdown: exit with the columns accumulated so far instead of
      // producing a singular triangular solve.
      Real denom = std::hypot(H[j][j], H[j][j + 1]);
      if (fault::fires("ksp.breakdown")) denom = 0.0;
      if (!(denom > 0.0) || !std::isfinite(denom)) {
        reason = ConvergedReason::kDivergedBreakdown;
        stats.detail = "zero Hessenberg column";
        break;
      }
      cs[j] = H[j][j] / denom;
      sn[j] = H[j][j + 1] / denom;
      H[j][j] = denom;
      H[j][j + 1] = 0.0;
      g[j + 1] = -sn[j] * g[j];
      g[j] = cs[j] * g[j];

      rnorm = fault::corrupt("ksp.rnorm", std::abs(g[j + 1]));
      ++j;
      ++total_it;
      if (s.record_history) stats.history.push_back(rnorm);
      if (s.monitor) s.monitor(total_it, rnorm, nullptr);
      reason = conv.test(rnorm, total_it);

      // SDC sentinel: every sentinel_every iterations materialize the
      // candidate solution from the j completed columns and recompute the
      // true residual the recurrence claims to track. Reads only scratch
      // vectors, so the iteration itself is bitwise unchanged.
      if (s.sentinel_every > 0 && reason == ConvergedReason::kIterating &&
          total_it % s.sentinel_every == 0) {
        sx.copy_from(x);
        apply_update(j, sx, sw, sz);
        sr.resize(n);
        a.residual(b, sx, sr);
        if (sdc_sentinel_drift(rnorm, sr.norm2(), stats.initial_residual,
                               total_it, s, stats))
          reason = ConvergedReason::kDivergedSdc;
      }
    }

    // Update the solution with the j completed columns.
    apply_update(j, x, w, ztmp);

    const Real recurrence_norm = rnorm;
    a.residual(b, x, r);
    rnorm = r.norm2();
    // The explicit residual here is free: cross-check the recurrence against
    // it when the sentinel is enabled (a drift at cycle end is the same
    // corruption signal as mid-cycle).
    if (s.sentinel_every > 0 && !is_fatal(reason) && j > 0 &&
        sdc_sentinel_drift(recurrence_norm, rnorm, stats.initial_residual,
                           total_it, s, stats))
      reason = ConvergedReason::kDivergedSdc;
    // Re-test against the explicit residual: the Arnoldi recurrence can
    // disagree near convergence, and a max_it exit may actually have met
    // the target. Fatal reasons (NaN, dtol, breakdown, SDC) stand.
    if (!is_fatal(reason)) reason = conv.test(rnorm, total_it);
  }

  stats.iterations = total_it;
  stats.final_residual = rnorm;
  stats.reason = reason;
  stats.converged = is_converged(reason);
  auto& metrics = obs::MetricsRegistry::instance();
  metrics.counter(flexible ? "ksp.fgmres.solves" : "ksp.gmres.solves").inc();
  metrics.counter(flexible ? "ksp.fgmres.iterations" : "ksp.gmres.iterations")
      .inc(total_it);
  return stats;
}

} // namespace

SolveStats gmres_solve(const LinearOperator& a, const Preconditioner& pc,
                       const Vector& b, Vector& x, const KrylovSettings& s) {
  return gmres_impl(a, pc, b, x, s, /*flexible=*/false);
}

SolveStats fgmres_solve(const LinearOperator& a, const Preconditioner& pc,
                        const Vector& b, Vector& x, const KrylovSettings& s) {
  return gmres_impl(a, pc, b, x, s, /*flexible=*/true);
}

} // namespace ptatin
