// Material point storage (§II-C).
//
// Lagrangian points carry the rock lithology Phi and its history variables
// (accumulated plastic strain). Storage is struct-of-arrays; removal is
// swap-with-last, so indices are not stable across removals.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sealed.hpp"
#include "common/small_mat.hpp"
#include "common/types.hpp"
#include "fem/mesh.hpp"

namespace ptatin {

class MaterialPoints {
public:
  Index size() const { return static_cast<Index>(lith_.size()); }

  void reserve(Index n);
  /// Append a point; returns its index.
  Index add(const Vec3& x, int lithology, Real plastic_strain = 0.0);
  /// Swap-remove point i (the last point takes index i).
  void remove(Index i);
  void clear();

  Vec3 position(Index i) const {
    return Vec3{x_[3 * i], x_[3 * i + 1], x_[3 * i + 2]};
  }
  void set_position(Index i, const Vec3& x) {
    x_[3 * i] = x[0];
    x_[3 * i + 1] = x[1];
    x_[3 * i + 2] = x[2];
  }

  int lithology(Index i) const { return lith_[i]; }
  Real& plastic_strain(Index i) { return eps_p_[i]; }
  Real plastic_strain(Index i) const { return eps_p_[i]; }

  /// Last known containing element (location hint; -1 = unknown).
  Index element(Index i) const { return el_[i]; }
  Vec3 local_coord(Index i) const {
    return Vec3{xi_[3 * i], xi_[3 * i + 1], xi_[3 * i + 2]};
  }
  void set_location(Index i, Index element, const Vec3& xi) {
    el_[i] = element;
    xi_[3 * i] = xi[0];
    xi_[3 * i + 1] = xi[1];
    xi_[3 * i + 2] = xi[2];
  }
  void invalidate_location(Index i) { el_[i] = -1; }

  /// Enumerate the SoA slabs as SDC seal regions (docs/ROBUSTNESS.md). The
  /// stepper seals the point population between steps; any mutation path
  /// (advection, population control) runs before the seal is re-armed.
  void append_seal_regions(std::vector<sdc::Region>& regions) const {
    regions.push_back({"points.x", x_.data(), x_.size() * sizeof(Real)});
    regions.push_back({"points.xi", xi_.data(), xi_.size() * sizeof(Real)});
    regions.push_back({"points.el", el_.data(), el_.size() * sizeof(Index)});
    regions.push_back(
        {"points.lith", lith_.data(), lith_.size() * sizeof(int)});
    regions.push_back(
        {"points.eps_p", eps_p_.data(), eps_p_.size() * sizeof(Real)});
  }

private:
  std::vector<Real> x_;   ///< 3*n positions
  std::vector<Real> xi_;  ///< 3*n local coordinates (valid when el_ >= 0)
  std::vector<Index> el_; ///< containing element or -1
  std::vector<int> lith_;
  std::vector<Real> eps_p_;
};

/// Regular initial layout: `per_dim`^3 points per element at equispaced
/// reference positions, optionally jittered. The lithology of each point is
/// assigned by the callback from its physical position.
void layout_points(const StructuredMesh& mesh, int per_dim,
                   const std::function<int(const Vec3&)>& lithology_of,
                   MaterialPoints& points, Real jitter = 0.0,
                   std::uint64_t seed = 7);

/// (Re)locate every point; returns the number of points NOT found inside the
/// mesh (their element hint becomes -1).
Index locate_all(const StructuredMesh& mesh, MaterialPoints& points);

} // namespace ptatin
