// Material point advection: D(Phi)/Dt = 0 (Eq. 6) realized by moving points
// through the FE velocity field with a second-order Runge-Kutta update.
#pragma once

#include "fem/mesh.hpp"
#include "la/vector.hpp"
#include "mpm/points.hpp"

namespace ptatin {

struct AdvectionStats {
  Index advected = 0;
  Index left_domain = 0; ///< points whose midpoint/endpoint left the mesh
};

/// RK2 (midpoint) advection of all located points; positions are updated and
/// locations re-resolved. Points that exit the mesh keep their position but
/// have an invalid element (migration/deletion is the exchanger's job).
AdvectionStats advect_points_rk2(const StructuredMesh& mesh, const Vector& u,
                                 Real dt, MaterialPoints& points);

/// Forward-Euler variant (ablation / cheap paths).
AdvectionStats advect_points_euler(const StructuredMesh& mesh, const Vector& u,
                                   Real dt, MaterialPoints& points);

/// Stable advective time step: dt <= cfl * min(h_el / |u|_el).
Real compute_cfl_dt(const StructuredMesh& mesh, const Vector& u, Real cfl);

} // namespace ptatin
