#include "ptatin/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/log.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/report.hpp"
#include "ptatin/context.hpp"

namespace ptatin {

namespace {

constexpr std::uint64_t kMagic = 0x70543344636B7032ull; // "pT3Dckp2"
constexpr std::uint32_t kVersion = 2;

// Section fourcc ids (little-endian "MESH"/"FLDS"/"PNTS").
constexpr std::uint32_t kSecMesh = 0x4853454Du;
constexpr std::uint32_t kSecFields = 0x53444C46u;
constexpr std::uint32_t kSecPoints = 0x53544E50u;

constexpr const char* kManifestSchema = "ptatin.checkpoint_manifest/1";
constexpr const char* kManifestName = "manifest.json";

template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <class T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  PT_ASSERT_MSG(bool(is), "checkpoint: unexpected end of file");
  return v;
}

void write_reals(std::ostream& os, const Real* data, std::uint64_t n) {
  write_pod(os, n);
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(n * sizeof(Real)));
}

std::vector<Real> read_reals(std::istream& is) {
  const std::uint64_t n = read_pod<std::uint64_t>(is);
  std::vector<Real> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(Real)));
  PT_ASSERT_MSG(bool(is), "checkpoint: truncated array");
  return v;
}

void write_vector(std::ostream& os, const Vector& v) {
  write_reals(os, v.data(), static_cast<std::uint64_t>(v.size()));
}

void read_vector_into(std::istream& is, Vector& v, const char* what) {
  const std::vector<Real> data = read_reals(is);
  PT_ASSERT_MSG(static_cast<Index>(data.size()) == v.size(),
                std::string("checkpoint: size mismatch for ") + what);
  for (Index i = 0; i < v.size(); ++i) v[i] = data[i];
}

// --- section payloads --------------------------------------------------------

std::string mesh_payload(const PtatinContext& ctx) {
  std::ostringstream os(std::ios::binary);
  const StructuredMesh& mesh = ctx.mesh();
  write_pod<std::int64_t>(os, mesh.mx());
  write_pod<std::int64_t>(os, mesh.my());
  write_pod<std::int64_t>(os, mesh.mz());
  write_reals(os, mesh.coords().data(),
              static_cast<std::uint64_t>(mesh.coords().size()));
  return os.str();
}

std::string fields_payload(const PtatinContext& ctx) {
  std::ostringstream os(std::ios::binary);
  write_vector(os, ctx.velocity());
  write_vector(os, ctx.pressure());
  write_vector(os, ctx.temperature()); // may be empty (no energy equation)
  return os.str();
}

std::string points_payload(const PtatinContext& ctx) {
  std::ostringstream os(std::ios::binary);
  const MaterialPoints& pts = ctx.points();
  write_pod<std::uint64_t>(os, static_cast<std::uint64_t>(pts.size()));
  for (Index i = 0; i < pts.size(); ++i) {
    const Vec3 x = pts.position(i);
    write_pod(os, x[0]);
    write_pod(os, x[1]);
    write_pod(os, x[2]);
    write_pod<std::int32_t>(os, pts.lithology(i));
    write_pod(os, pts.plastic_strain(i));
    // Element + local coordinate make the restore bitwise: re-locating from
    // the position alone can land on a neighboring xi by round-off.
    write_pod<std::int64_t>(os, pts.element(i));
    const Vec3 xi = pts.local_coord(i);
    write_pod(os, xi[0]);
    write_pod(os, xi[1]);
    write_pod(os, xi[2]);
  }
  return os.str();
}

void apply_mesh(std::istream& is, PtatinContext& ctx) {
  StructuredMesh& mesh = ctx.mutable_mesh();
  const auto mx = read_pod<std::int64_t>(is);
  const auto my = read_pod<std::int64_t>(is);
  const auto mz = read_pod<std::int64_t>(is);
  PT_ASSERT_MSG(mx == mesh.mx() && my == mesh.my() && mz == mesh.mz(),
                "checkpoint: mesh dimensions do not match the model");
  const std::vector<Real> coords = read_reals(is);
  PT_ASSERT_MSG(coords.size() == mesh.coords().size(),
                "checkpoint: coordinate array size mismatch");
  mesh.coords() = coords;
}

void apply_fields(std::istream& is, PtatinContext& ctx) {
  read_vector_into(is, ctx.mutable_velocity(), "velocity");
  read_vector_into(is, ctx.mutable_pressure(), "pressure");
  read_vector_into(is, ctx.mutable_temperature(), "temperature");
}

void apply_points(std::istream& is, PtatinContext& ctx) {
  MaterialPoints& pts = ctx.points();
  pts.clear();
  const std::uint64_t n = read_pod<std::uint64_t>(is);
  pts.reserve(static_cast<Index>(n));
  const Index num_elements = ctx.mesh().num_elements();
  for (std::uint64_t i = 0; i < n; ++i) {
    Vec3 x;
    x[0] = read_pod<Real>(is);
    x[1] = read_pod<Real>(is);
    x[2] = read_pod<Real>(is);
    const auto lith = read_pod<std::int32_t>(is);
    const Real eps = read_pod<Real>(is);
    const auto el = read_pod<std::int64_t>(is);
    Vec3 xi;
    xi[0] = read_pod<Real>(is);
    xi[1] = read_pod<Real>(is);
    xi[2] = read_pod<Real>(is);
    const Index j = pts.add(x, lith, eps);
    if (el >= 0 && el < num_elements)
      pts.set_location(j, static_cast<Index>(el), xi);
    else
      pts.invalidate_location(j);
  }
}

struct Section {
  std::uint32_t id = 0;
  std::string payload;
};

void write_section(std::ostream& os, std::uint32_t id,
                   const std::string& payload) {
  write_pod(os, id);
  write_pod<std::uint64_t>(os, payload.size());
  write_pod<std::uint32_t>(os, crc32(payload.data(), payload.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kSecMesh: return "MESH";
    case kSecFields: return "FLDS";
    case kSecPoints: return "PNTS";
    default: return "????";
  }
}

} // namespace

void save_checkpoint_stream(std::ostream& os, const PtatinContext& ctx,
                            const CheckpointMeta& meta) {
  fault::maybe_fail("checkpoint.write");

  const Section sections[] = {{kSecMesh, mesh_payload(ctx)},
                              {kSecFields, fields_payload(ctx)},
                              {kSecPoints, points_payload(ctx)}};

  // Header, protected by its own CRC so corruption cannot masquerade as an
  // impossible section count or step index.
  std::ostringstream hs(std::ios::binary);
  write_pod(hs, kMagic);
  write_pod(hs, kVersion);
  write_pod<std::uint32_t>(hs, std::uint32_t(std::size(sections)));
  write_pod<std::int64_t>(hs, meta.step);
  write_pod(hs, meta.sim_time);
  write_pod(hs, meta.dt_cap);
  const std::string header = hs.str();
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  write_pod<std::uint32_t>(os, crc32(header.data(), header.size()));

  for (const Section& s : sections) write_section(os, s.id, s.payload);
  PT_ASSERT_MSG(os.good(), "checkpoint: write failed");
}

CheckpointMeta load_checkpoint_stream(std::istream& is, PtatinContext& ctx) {
  fault::maybe_fail("checkpoint.read");

  // Header: re-serialize the fields just read and verify the stored CRC.
  std::ostringstream hs(std::ios::binary);
  const auto magic = read_pod<std::uint64_t>(is);
  PT_ASSERT_MSG(magic == kMagic,
                "checkpoint: bad magic (not a pTatin3D v2 checkpoint)");
  const auto version = read_pod<std::uint32_t>(is);
  PT_ASSERT_MSG(version == kVersion, "checkpoint: unsupported version");
  const auto section_count = read_pod<std::uint32_t>(is);
  CheckpointMeta meta;
  meta.step = read_pod<std::int64_t>(is);
  meta.sim_time = read_pod<double>(is);
  meta.dt_cap = read_pod<double>(is);
  write_pod(hs, magic);
  write_pod(hs, version);
  write_pod(hs, section_count);
  write_pod(hs, meta.step);
  write_pod(hs, meta.sim_time);
  write_pod(hs, meta.dt_cap);
  const std::string header = hs.str();
  const auto header_crc = read_pod<std::uint32_t>(is);
  PT_ASSERT_MSG(header_crc == crc32(header.data(), header.size()),
                "checkpoint: header checksum mismatch (corrupt header)");
  PT_ASSERT_MSG(section_count >= 1 && section_count <= 64,
                "checkpoint: implausible section count");

  // Read and CRC-verify every section BEFORE applying any of them, so a
  // corrupt trailing section can never leave the context half-restored.
  std::vector<Section> sections(section_count);
  for (Section& s : sections) {
    s.id = read_pod<std::uint32_t>(is);
    const auto bytes = read_pod<std::uint64_t>(is);
    const auto crc = read_pod<std::uint32_t>(is);
    s.payload.resize(bytes);
    is.read(s.payload.data(), static_cast<std::streamsize>(bytes));
    PT_ASSERT_MSG(bool(is), std::string("checkpoint: truncated section ") +
                                section_name(s.id));
    PT_ASSERT_MSG(crc == crc32(s.payload.data(), s.payload.size()),
                  std::string("checkpoint: checksum mismatch in section ") +
                      section_name(s.id));
  }

  for (const Section& s : sections) {
    std::istringstream ps(s.payload, std::ios::binary);
    switch (s.id) {
      case kSecMesh: apply_mesh(ps, ctx); break;
      case kSecFields: apply_fields(ps, ctx); break;
      case kSecPoints: apply_points(ps, ctx); break;
      default:
        // Unknown (future) sections are checksummed and skipped, so adding a
        // section is not a breaking format change.
        log_warn("checkpoint: skipping unknown section id ", s.id);
    }
  }
  return meta;
}

namespace {

/// Flush file contents to stable storage; a rename is only atomic-durable if
/// the data blocks preceded it to disk.
void fsync_file(const std::string& path) {
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

/// Deterministic post-publication corruption for the fault sites
/// "checkpoint.torn_write" (truncate: the tail never reached disk) and
/// "checkpoint.bitflip" (flip one payload bit: silent media corruption).
void maybe_corrupt_published(const std::string& path) {
  namespace fs = std::filesystem;
  if (fault::fires("checkpoint.torn_write")) {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (!ec && size > 0) fs::resize_file(path, size / 2, ec);
  }
  if (fault::fires("checkpoint.bitflip")) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    if (f) {
      f.seekg(0, std::ios::end);
      const auto size = f.tellg();
      if (size > 0) {
        f.seekg(-1, std::ios::end);
        char byte = 0;
        f.get(byte);
        f.seekp(-1, std::ios::end);
        f.put(char(byte ^ 0x01));
      }
    }
  }
}

} // namespace

void save_checkpoint(const std::string& path, const PtatinContext& ctx,
                     const CheckpointMeta& meta) {
  PerfScope span("CheckpointSave");
  std::ostringstream os(std::ios::binary);
  save_checkpoint_stream(os, ctx, meta);
  const std::string blob = os.str();

  // Atomic publication: a reader (or a restart after a kill) either sees the
  // previous checkpoint or the complete new one, never a torn write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    PT_ASSERT_MSG(f.good(), "checkpoint: cannot open " + tmp);
    f.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    f.flush();
    PT_ASSERT_MSG(f.good(), "checkpoint: write failed for " + tmp);
  }
  fsync_file(tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  PT_ASSERT_MSG(!ec, "checkpoint: cannot publish " + path + ": " + ec.message());

  maybe_corrupt_published(path);

  auto& metrics = obs::MetricsRegistry::instance();
  metrics.counter("checkpoint.saves").inc();
  metrics.counter("checkpoint.save_bytes").inc((long long)blob.size());
}

CheckpointMeta load_checkpoint(const std::string& path, PtatinContext& ctx) {
  PerfScope span("CheckpointLoad");
  std::ifstream is(path, std::ios::binary);
  PT_ASSERT_MSG(is.good(), "checkpoint: cannot open " + path);
  const CheckpointMeta meta = load_checkpoint_stream(is, ctx);
  obs::MetricsRegistry::instance().counter("checkpoint.loads").inc();
  return meta;
}

// --- rotation ----------------------------------------------------------------

CheckpointRotation::CheckpointRotation(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(keep) {
  PT_ASSERT_MSG(keep_ >= 1, "checkpoint rotation: keep must be >= 1");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  PT_ASSERT_MSG(!ec, "checkpoint rotation: cannot create " + dir_);
}

std::vector<std::string> CheckpointRotation::list() const {
  namespace fs = std::filesystem;
  std::vector<std::string> files;

  // Prefer the manifest: it is published atomically, so it names exactly the
  // set of complete checkpoints as of the last save.
  const fs::path manifest = fs::path(dir_) / kManifestName;
  if (std::ifstream in(manifest); in) {
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
      const obs::JsonValue doc = obs::JsonValue::parse(ss.str());
      const obs::JsonValue* schema = doc.find("schema");
      const obs::JsonValue* entries = doc.find("files");
      if (schema != nullptr && schema->as_string() == kManifestSchema &&
          entries != nullptr && entries->is_array()) {
        for (std::size_t i = 0; i < entries->size(); ++i)
          if (const obs::JsonValue* f = entries->at(i).find("file"))
            files.push_back((fs::path(dir_) / f->as_string()).string());
      }
    } catch (const Error&) {
      files.clear(); // unreadable manifest: fall through to the scan
    }
    // Drop manifest entries whose file vanished (e.g. a kill between prune
    // and manifest publication).
    files.erase(std::remove_if(files.begin(), files.end(),
                               [](const std::string& p) {
                                 std::error_code ec;
                                 return !fs::exists(p, ec);
                               }),
                files.end());
    if (!files.empty()) return files;
  }

  // Fallback: scan the directory. Names encode the step zero-padded, so a
  // lexicographic sort is oldest-to-newest.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt_", 0) == 0 && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".bin") == 0)
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void CheckpointRotation::write_manifest(
    const std::vector<std::string>& files) const {
  namespace fs = std::filesystem;
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = obs::JsonValue(kManifestSchema);
  doc["keep"] = obs::JsonValue(keep_);
  obs::JsonValue entries = obs::JsonValue::array();
  for (const std::string& p : files) {
    obs::JsonValue e = obs::JsonValue::object();
    const fs::path path(p);
    e["file"] = obs::JsonValue(path.filename().string());
    // Step index is encoded in the name: ckpt_<step>.bin.
    const std::string name = path.filename().string();
    long long step = -1;
    std::sscanf(name.c_str(), "ckpt_%lld.bin", &step);
    e["step"] = obs::JsonValue(step);
    std::error_code ec;
    const auto bytes = fs::file_size(p, ec);
    e["bytes"] = obs::JsonValue((long long)(ec ? 0 : bytes));
    entries.push_back(std::move(e));
  }
  doc["files"] = std::move(entries);

  const fs::path manifest = fs::path(dir_) / kManifestName;
  const std::string tmp = manifest.string() + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    PT_ASSERT_MSG(f.good(), "checkpoint rotation: cannot write manifest");
    f << doc.dump(1) << "\n";
    PT_ASSERT_MSG(f.good(), "checkpoint rotation: manifest write failed");
  }
  fsync_file(tmp);
  std::error_code ec;
  fs::rename(tmp, manifest, ec);
  PT_ASSERT_MSG(!ec, "checkpoint rotation: cannot publish manifest");
}

std::string CheckpointRotation::save(const PtatinContext& ctx,
                                     const CheckpointMeta& meta) {
  namespace fs = std::filesystem;
  char name[32];
  std::snprintf(name, sizeof name, "ckpt_%06lld.bin",
                (long long)meta.step);
  const std::string path = (fs::path(dir_) / name).string();
  save_checkpoint(path, ctx, meta);

  std::vector<std::string> files = list();
  if (std::find(files.begin(), files.end(), path) == files.end())
    files.push_back(path);
  std::sort(files.begin(), files.end());

  auto& metrics = obs::MetricsRegistry::instance();
  while (files.size() > std::size_t(keep_)) {
    std::error_code ec;
    fs::remove(files.front(), ec);
    if (!ec) metrics.counter("checkpoint.pruned").inc();
    files.erase(files.begin());
  }
  write_manifest(files);
  ++obs::SolverReport::global().state().checkpoint_saves;
  return path;
}

CheckpointRotation::LoadResult CheckpointRotation::load_latest(
    PtatinContext& ctx) {
  const std::vector<std::string> files = list();
  PT_ASSERT_MSG(!files.empty(),
                "checkpoint rotation: no checkpoints in " + dir_);

  LoadResult res;
  auto& metrics = obs::MetricsRegistry::instance();
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    try {
      res.meta = load_checkpoint(*it, ctx);
      res.path = *it;
      auto& state = obs::SolverReport::global().state();
      ++state.restarts;
      state.restart_step = res.meta.step;
      state.restart_path = res.path;
      state.corrupt_skipped.insert(state.corrupt_skipped.end(),
                                   res.skipped.begin(), res.skipped.end());
      metrics.counter("checkpoint.restarts").inc();
      return res;
    } catch (const Error& e) {
      log_warn("checkpoint: ", *it, " failed verification (", e.what(),
               ") — falling back to the previous checkpoint");
      res.skipped.push_back(*it);
      metrics.counter("checkpoint.corrupt_skipped").inc();
    }
  }
  auto& state = obs::SolverReport::global().state();
  state.corrupt_skipped.insert(state.corrupt_skipped.end(),
                               res.skipped.begin(), res.skipped.end());
  PT_THROW("checkpoint rotation: no checkpoint in " << dir_
           << " verified (" << res.skipped.size() << " corrupt)");
}

// --- in-memory snapshot ------------------------------------------------------

void MemoryCheckpoint::capture(const PtatinContext& ctx) {
  std::ostringstream os(std::ios::binary);
  save_checkpoint_stream(os, ctx);
  data_ = os.str();
}

void MemoryCheckpoint::restore(PtatinContext& ctx) const {
  PT_ASSERT_MSG(valid(), "checkpoint: restore without a captured snapshot");
  std::istringstream is(data_, std::ios::binary);
  load_checkpoint_stream(is, ctx);
}

// --- state digest ------------------------------------------------------------

bool StateDigest::operator==(const StateDigest& o) const {
  return coords_crc == o.coords_crc && velocity_crc == o.velocity_crc &&
         pressure_crc == o.pressure_crc &&
         temperature_crc == o.temperature_crc && points_crc == o.points_crc &&
         num_points == o.num_points && num_elements == o.num_elements;
}

StateDigest digest_state(const PtatinContext& ctx) {
  StateDigest d;
  const StructuredMesh& mesh = ctx.mesh();
  d.coords_crc =
      crc32(mesh.coords().data(), mesh.coords().size() * sizeof(Real));
  d.velocity_crc = crc32(ctx.velocity().data(),
                         std::size_t(ctx.velocity().size()) * sizeof(Real));
  d.pressure_crc = crc32(ctx.pressure().data(),
                         std::size_t(ctx.pressure().size()) * sizeof(Real));
  d.temperature_crc =
      crc32(ctx.temperature().data(),
            std::size_t(ctx.temperature().size()) * sizeof(Real));
  const MaterialPoints& pts = ctx.points();
  std::uint32_t c = 0;
  for (Index i = 0; i < pts.size(); ++i) {
    const Vec3 x = pts.position(i);
    c = crc32(x.data(), sizeof(Real) * 3, c);
    const std::int32_t lith = pts.lithology(i);
    c = crc32(&lith, sizeof lith, c);
    const Real eps = pts.plastic_strain(i);
    c = crc32(&eps, sizeof eps, c);
  }
  d.points_crc = c;
  d.num_points = pts.size();
  d.num_elements = mesh.num_elements();
  return d;
}

} // namespace ptatin
