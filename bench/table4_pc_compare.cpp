// Table IV reproduction: matrix-free geometric multigrid vs assembled
// multilevel preconditioners for the same sinker Stokes problem.
//
// Configurations (paper §IV-C):
//   GMG-mf  : finest level matrix-free tensor-product, coarse rediscretized
//             then Galerkin (the production configuration)
//   GMG-i   : finest level assembled, coarse levels Galerkin
//   GMG-ii  : as GMG-i (Galerkin everywhere below the finest) — in our
//             hierarchy GMG-i already is Galerkin-below-finest, so GMG-ii is
//             realized as GMG-i with V(3,3) smoothing (the stronger variant)
//   SA-i    : smoothed aggregation AMG on the assembled fine operator,
//             GAMG-style (threshold 0.01, Chebyshev smoother, bJacobi/LU
//             coarsest)
//   SAML-i  : SA with ML-style settings (coarse_size 100)
//   SAML-ii : SA with the stronger smoother (FGMRES(2) + bJacobi-ILU(0)) and
//             inexact Krylov coarsest solve
//
// Reported per configuration: Krylov its, MatMult time, PC setup, PC apply,
// total solve time — the same rows as the paper's Table IV.
//
// Usage: table4_pc_compare [-m 12] [-contrast 1e4]
#include "bench_common.hpp"
#include "obs/perf.hpp"
#include "ptatin/models_sinker.hpp"
#include "saddle/stokes_solver.hpp"

using namespace ptatin;

namespace {

struct Config {
  std::string name;
  StokesSolverOptions opts;
};

} // namespace

int main(int argc, char** argv) {
  Options cli = Options::from_args(argc, argv);
  const Index m = cli.get_index("m", 12);
  const Real contrast = cli.get_real("contrast", 1e3);

  bench::banner("Table IV: preconditioner comparison (sinker Stokes)");
  std::printf("mesh %lld^3, contrast %.1e, rtol 1e-5\n\n", (long long)m,
              contrast);

  SinkerParams sp;
  sp.mx = sp.my = sp.mz = m;
  sp.contrast = contrast;
  StructuredMesh mesh = StructuredMesh::box(m, m, m, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = sinker_boundary_conditions(mesh);
  QuadCoefficients coeff = sinker_coefficients(mesh, sp);
  Vector f = assemble_body_force(mesh, coeff, {0, 0, -9.8});

  const int levels = suggest_gmg_levels(m);

  std::vector<Config> configs;
  {
    Config c;
    c.name = "GMG-mf";
    c.opts.kernel.type = FineOperatorType::kTensor;
    c.opts.gmg.levels = levels;
    c.opts.coarse_solve = GmgCoarseSolve::kAmg;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "GMG-i";
    c.opts.kernel.type = FineOperatorType::kAssembled;
    c.opts.gmg.levels = levels;
    c.opts.coarse_solve = GmgCoarseSolve::kAmg;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "GMG-ii";
    c.opts.kernel.type = FineOperatorType::kAssembled;
    c.opts.gmg.levels = levels;
    c.opts.gmg.smooth_pre = 3;
    c.opts.gmg.smooth_post = 3;
    c.opts.coarse_solve = GmgCoarseSolve::kAmg;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "SA-i";
    c.opts.kernel.type = FineOperatorType::kAssembled;
    c.opts.velocity_pc = VelocityPcType::kSaAmg;
    c.opts.amg.strength_threshold = 0.01;
    c.opts.amg.coarse_size = 400;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "SAML-i";
    c.opts.kernel.type = FineOperatorType::kAssembled;
    c.opts.velocity_pc = VelocityPcType::kSaAmg;
    c.opts.amg.strength_threshold = 0.01;
    c.opts.amg.coarse_size = 100;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "SAML-ii";
    c.opts.kernel.type = FineOperatorType::kAssembled;
    c.opts.velocity_pc = VelocityPcType::kSaAmg;
    c.opts.amg.strength_threshold = 0.01;
    c.opts.amg.coarse_size = 100;
    c.opts.amg.smoother = AmgSmoother::kKrylovIlu;
    c.opts.amg.coarsest = AmgCoarsestSolve::kInexactKrylov;
    configs.push_back(c);
  }

  bench::Table tab({"Config", "Its", "MatMult(s)", "PCsetup(s)", "PCapply(s)",
                    "Solve(s)", "vs GMG-mf"});
  tab.print_header();

  double gmg_mf_solve = 0.0;
  for (auto& c : configs) {
    c.opts.krylov.rtol = 1e-5;
    c.opts.krylov.max_it = 600;

    auto& reg = PerfRegistry::instance();
    reg.reset_all();
    StokesSolver solver(mesh, coeff, bc, c.opts);
    StokesSolveResult res = solver.solve(f);
    if (c.name == "GMG-mf") gmg_mf_solve = res.solve_seconds;

    tab.cell(c.name);
    tab.cell(long(res.stats.iterations));
    tab.cell(reg.event("MatMult(Stokes)").seconds(), "%.2f");
    tab.cell(solver.setup_seconds(), "%.2f");
    tab.cell(reg.event("PCApply(Stokes)").seconds(), "%.2f");
    tab.cell(res.solve_seconds, "%.2f");
    tab.cell(gmg_mf_solve > 0 ? res.solve_seconds / gmg_mf_solve : 1.0,
             "%.2fx");
    tab.endrow();
    if (!res.stats.converged)
      std::printf("    WARNING: %s did not converge\n", c.name.c_str());
    if (solver.gmg() != nullptr)
      std::printf("    (R^T A R Galerkin setup: %.2f s)\n",
                  solver.gmg()->galerkin_setup_seconds());
  }

  std::printf("\npaper reference shape (Table IV): GMG-ii lowest iterations "
              "(~23%% fewer than GMG-mf) but GMG-mf 1.7x faster end-to-end; "
              "GMG-i 3.3x-12.4x faster than the SA/SAML configurations.\n");
  return 0;
}
