// SDC sentinel shared by the recurrence-based Krylov methods
// (docs/ROBUSTNESS.md).
//
// GMRES and CG track the residual through a cheap scalar/vector recurrence
// (|g[j+1]| from the Givens-rotated Hessenberg; r += -alpha*Ap). In exact
// arithmetic the recurrence equals the true residual ||b - A x||;
// floating-point drift stays O(eps * ||r_0||). A flipped bit in the Krylov
// basis, the operator data, or the recurrence scalars therefore shows up as
// drift far above roundoff — while the recurrence happily "converges" on
// garbage. Every KrylovSettings::sentinel_every iterations the solvers
// recompute the true residual and call this cross-check; a trip terminates
// the solve with ConvergedReason::kDivergedSdc, which the timestep safeguard
// tier heals by a same-dt replay from the rollback snapshot.
//
// GCR needs no sentinel: it iterates on the explicit residual already.
#pragma once

#include "ksp/settings.hpp"

namespace ptatin {

/// Compare the recurrence-tracked norm against the recomputed true residual
/// norm; relative drift (measured against ||r_0||) beyond s.sentinel_tol is
/// a trip: fills stats.detail, counts sdc.sentinel_* metrics/report fields,
/// and returns true. Non-finite inputs are left to the NaN guards. The
/// deterministic fault site "sdc.krylov_drift" perturbs the recurrence side
/// here so the whole detect-and-heal loop is provable in tests.
bool sdc_sentinel_drift(Real recurrence, Real truenorm, Real rnorm0, int it,
                        const KrylovSettings& s, SolveStats& stats);

} // namespace ptatin
