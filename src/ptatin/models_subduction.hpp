// Slab subduction model: the second §I motivating application (alongside
// rifting). A stiff, dense lithospheric plate with a dipping slab segment
// hangs in a weak mantle; negative buoyancy drives subduction and rollback.
// A standard community benchmark geometry (cf. the "sinking slab" setups of
// the geodynamics literature referenced in §I).
#pragma once

#include "ptatin/model.hpp"

namespace ptatin {

struct SubductionParams {
  Index mx = 16, my = 8, mz = 8;
  Real lx = 4.0, ly = 2.0, lz = 2.0; ///< z is vertical
  Real plate_thickness = 0.2;        ///< horizontal plate layer below surface
  Real plate_extent = 2.4;           ///< x-extent of the surface plate
  Real slab_dip_depth = 0.8;         ///< how deep the initial slab hangs
  Real slab_dip_angle = 0.6;         ///< radians from vertical-ish descent
  Real eta_mantle = 1e-2;
  Real eta_plate = 1.0;
  Real rho_mantle = 1.0;
  Real rho_plate = 1.15;
  /// Plasticity of the plate (enables bending/necking).
  Real cohesion = 2.0;
  Real friction_angle = 0.5;
};

ModelSetup make_subduction_model(const SubductionParams& p);

/// Deepest vertical position reached by slab-lithology material points
/// (the slab-tip depth observable).
Real slab_tip_depth(const ModelSetup& setup, const class MaterialPoints& pts);

} // namespace ptatin
