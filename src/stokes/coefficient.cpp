#include "stokes/coefficient.hpp"

#include <algorithm>

namespace ptatin {

Real QuadCoefficients::eta_min() const {
  return eta_.empty() ? 0.0 : *std::min_element(eta_.begin(), eta_.end());
}

Real QuadCoefficients::eta_max() const {
  return eta_.empty() ? 0.0 : *std::max_element(eta_.begin(), eta_.end());
}

} // namespace ptatin
