// The viscous (J_uu) block: four interchangeable operator back-ends.
//
//  - AsmbViscousOperator   : assembled CSR SpMV               (Table I "Assembled")
//  - MfViscousOperator     : matrix-free, dense 81x27 D_e     (Table I "Matrix-free")
//  - TensorViscousOperator : matrix-free, sum-factorized      (Table I "Tensor")
//  - TensorCViscousOperator: stored scaled metric per qpoint  (Table I "Tensor C")
//
// All back-ends enforce Dirichlet constraints by masking (identity on
// constrained dofs), so they are interchangeable as smoother operators on
// any multigrid level. The MF and Tensor back-ends optionally apply the
// Newton linearization term eta' (D0 : D(du)) D0 of §III-A; the assembled
// and TensorC back-ends are Picard-only (they exist to precondition).
// The MF/Tens/TensC back-ends additionally support a cross-element BATCHED
// execution path (batch_width = 4 or 8): within each color, W elements are
// gathered into 64-byte-aligned SoA lane buffers and the element kernel runs
// lane-vectorized across them (docs/KERNELS.md). Batched applies are bitwise
// identical to the scalar path — each lane performs the scalar arithmetic in
// the scalar order — so a batched operator is drop-in anywhere the scalar one
// is, including as an MG smoother operator.
#pragma once

#include <memory>
#include <string>

#include "common/aligned.hpp"
#include "common/parallel.hpp"
#include "fem/bc.hpp"
#include "fem/dofmap.hpp"
#include "fem/kernel_registry.hpp"
#include "fem/mesh.hpp"
#include "ksp/operator.hpp"
#include "la/csr.hpp"
#include "stokes/coefficient.hpp"
#include "stokes/geometry.hpp"

namespace ptatin {

class SubdomainEngine;

// FineOperatorType, KernelSpec, and the dispatch registry live in
// fem/kernel_registry.hpp (included above) — re-exported here for the many
// existing call sites that name them through this header.

/// Flop / byte models per element for the four back-ends, as analyzed in
/// §III-D (Table I). "paper_*" are the published analytic counts.
struct OperatorCostModel {
  double flops_per_element = 0;
  double bytes_perfect = 0;  ///< perfect-cache data motion per element
  double bytes_pessimal = 0; ///< pessimal-cache data motion per element
};

class ViscousOperatorBase : public LinearOperator {
public:
  /// batch_width: 0 = per-element scalar path; 4 or 8 = cross-element SIMD
  /// batches (only meaningful for the matrix-free back-ends; the assembled
  /// back-end ignores it).
  ViscousOperatorBase(const StructuredMesh& mesh, const QuadCoefficients& coeff,
                      const DirichletBc* bc, int batch_width = 0)
      : mesh_(mesh), coeff_(coeff), bc_(bc), batch_width_(batch_width) {
    PT_ASSERT(coeff.num_elements() == mesh.num_elements());
    PT_ASSERT_MSG(batch_width == 0 || is_batch_width(batch_width),
                  "batch width must be 0 (scalar), 4, or 8");
  }

  Index rows() const override { return num_velocity_dofs(mesh_); }
  Index cols() const override { return num_velocity_dofs(mesh_); }

  /// Masked apply: identity on constrained dofs, operator on the rest.
  void apply(const Vector& x, Vector& y) const override;

  /// Picard-operator diagonal (1 on constrained dofs).
  Vector diagonal() const override;

  /// Enable/disable the Newton linearization term (requires coefficients
  /// with allocated Newton state).
  virtual void set_newton(bool on) {
    PT_ASSERT_MSG(!on || coeff_.has_newton(),
                  "Newton term requires allocated Newton coefficients");
    newton_ = on;
  }
  bool newton() const { return newton_; }

  virtual std::string name() const = 0;
  virtual OperatorCostModel cost_model() const = 0;

  const StructuredMesh& mesh() const { return mesh_; }
  const QuadCoefficients& coefficients() const { return coeff_; }
  const DirichletBc* bc() const { return bc_; }
  int batch_width() const { return batch_width_; }

  /// Route the unmasked apply through a subdomain-parallel engine (per-
  /// subdomain element sweeps + in-memory halo exchange, docs/PARALLELISM.md)
  /// instead of the global colored loop. Borrowed; must outlive the operator
  /// and match its element dimensions; null restores the global path. The
  /// engine path takes precedence over the batched path, and the assembled
  /// back-end (a global SpMV, no element sweep) ignores it.
  void set_subdomain_engine(const SubdomainEngine* engine);
  const SubdomainEngine* subdomain_engine() const { return engine_; }

protected:
  virtual void apply_unmasked(const Vector& x, Vector& y) const = 0;

  /// "Name" or "Name[bW]" for the batched variants (Table I row labels).
  std::string decorated_name(const char* base) const {
    if (batch_width_ == 0) return base;
    return std::string(base) + "[b" + std::to_string(batch_width_) + "]";
  }

  const StructuredMesh& mesh_;
  const QuadCoefficients& coeff_;
  const DirichletBc* bc_;
  bool newton_ = false;
  int batch_width_ = 0;
  const SubdomainEngine* engine_ = nullptr;
  mutable Vector work_;
};

/// Deprecated name for the construction-time kernel description — the
/// KernelSpec (fem/kernel_registry.hpp) absorbed it, adding the polynomial
/// order. Note the field rename: the engine pointer is `engine` (was
/// `decomp`).
using ViscousBackendSpec = KernelSpec;

/// Build a viscous back-end from its spec by resolving the kernel registry
/// (the one construction path; mg/gmg and saddle/stokes_solver previously
/// each had a private copy of a switch over the type). Unregistered
/// (backend, order, width, engine-mode) combinations throw with the nearest
/// registered keys named.
std::unique_ptr<ViscousOperatorBase>
make_viscous_backend(const KernelSpec& spec, const StructuredMesh& mesh,
                     const QuadCoefficients& coeff, const DirichletBc* bc);

// ---------------------------------------------------------------------------

/// Assembled CSR back-end. Assembly uses the Picard element matrices
/// K[(i,c)(i',c')] = sum_q w detJ eta (delta_cc' g_i.g_i' + g_i[c'] g_i'[c]).
class AsmbViscousOperator : public ViscousOperatorBase {
public:
  AsmbViscousOperator(const StructuredMesh& mesh, const QuadCoefficients& coeff,
                      const DirichletBc* bc);

  std::string name() const override { return "Asmb"; }
  OperatorCostModel cost_model() const override;
  Vector diagonal() const override { return a_.diagonal(); }

  const CsrMatrix& matrix() const { return a_; }
  void set_newton(bool on) override {
    PT_ASSERT_MSG(!on, "assembled back-end is Picard-only");
  }

protected:
  void apply_unmasked(const Vector& x, Vector& y) const override {
    a_.mult(x, y);
  }

private:
  CsrMatrix a_;
};

/// Non-tensor matrix-free back-end (reference implementation, §III-D Eq. 18).
class MfViscousOperator : public ViscousOperatorBase {
public:
  using ViscousOperatorBase::ViscousOperatorBase;
  std::string name() const override { return decorated_name("MF"); }
  OperatorCostModel cost_model() const override;

protected:
  void apply_unmasked(const Vector& x, Vector& y) const override;

private:
  template <int W>
  void apply_batched(const Vector& x, Vector& y) const;
};

/// Sum-factorized tensor-product back-end (§III-D Eq. 19).
class TensorViscousOperator : public ViscousOperatorBase {
public:
  using ViscousOperatorBase::ViscousOperatorBase;
  std::string name() const override { return decorated_name("Tens"); }
  OperatorCostModel cost_model() const override;

protected:
  void apply_unmasked(const Vector& x, Vector& y) const override;

private:
  template <int W>
  void apply_batched(const Vector& x, Vector& y) const;
};

/// Stored-coefficient tensor back-end ("Tensor C"): per quadrature point the
/// scaled metric Gtilde = sqrt(w detJ eta) * (dxi/dx) is precomputed, removing
/// per-apply geometry recomputation at the cost of 9*27 stored scalars per
/// element. Isotropic-Picard only (the paper notes this variant pays off for
/// anisotropic coefficients; for isotropic eta it is marginal — we reproduce
/// that finding).
class TensorCViscousOperator : public ViscousOperatorBase {
public:
  TensorCViscousOperator(const StructuredMesh& mesh,
                         const QuadCoefficients& coeff, const DirichletBc* bc,
                         int batch_width = 0);
  std::string name() const override { return decorated_name("TensC"); }
  OperatorCostModel cost_model() const override;
  void set_newton(bool on) override {
    PT_ASSERT_MSG(!on, "TensorC back-end is Picard-only");
  }

  /// Refresh the stored metric after mesh/coefficient changes.
  void update_stored_coefficients();

protected:
  void apply_unmasked(const Vector& x, Vector& y) const override;

private:
  template <int W>
  void apply_batched(const Vector& x, Vector& y) const;

  AlignedVector<Real> gtilde_; ///< 9 * 27 * num_elements
};

// ---------------------------------------------------------------------------

/// Assemble the Picard viscous matrix (no BC treatment).
CsrMatrix assemble_viscous_matrix(const StructuredMesh& mesh,
                                  const QuadCoefficients& coeff);

/// Compute the Picard-operator diagonal by element loops (no BC treatment).
Vector compute_viscous_diagonal(const StructuredMesh& mesh,
                                const QuadCoefficients& coeff);

/// Extent of one color (parity class) of the element lattice. Same-colored
/// Q2 elements share no nodes, so element scatters within a color never race.
struct ColorExtent {
  Index ox, oy, oz; ///< lattice offset of the color
  Index cx, cy, cz; ///< elements of this color per direction
  Index count() const { return cx * cy * cz; }
  /// t-th element of the color (lexicographic in the color sub-lattice).
  Index element(const StructuredMesh& mesh, Index t) const {
    const Index ei = ox + 2 * (t % cx);
    const Index ej = oy + 2 * ((t / cx) % cy);
    const Index ek = oz + 2 * (t / (cx * cy));
    return mesh.element_index(ei, ej, ek);
  }
};

inline ColorExtent color_extent(const StructuredMesh& mesh, int color) {
  ColorExtent ce;
  ce.ox = color & 1;
  ce.oy = (color >> 1) & 1;
  ce.oz = (color >> 2) & 1;
  ce.cx = (mesh.mx() - ce.ox + 1) / 2;
  ce.cy = (mesh.my() - ce.oy + 1) / 2;
  ce.cz = (mesh.mz() - ce.oz + 1) / 2;
  if (ce.cx <= 0 || ce.cy <= 0 || ce.cz <= 0) ce.cx = ce.cy = ce.cz = 0;
  return ce;
}

/// Loop over elements in 8 independent colors. All 8 colors run inside ONE
/// parallel region (barriers between colors), so an operator apply pays a
/// single fork/join instead of eight (§III-D hot path).
template <class Fn>
void for_each_element_colored(const StructuredMesh& mesh, Fn&& fn) {
  parallel_for_phased(
      8, [&](int color) { return color_extent(mesh, color).count(); },
      [&](int color, Index t) {
        fn(color_extent(mesh, color).element(mesh, t));
      });
}

/// Batched colored loop: within each color, consecutive runs of W elements
/// form one batch handed to `bfn(const Index elems[W])`; the ragged tail of
/// each color (count % W elements) goes one-by-one to the scalar `sfn(e)`.
/// Batches are disjoint within a color, so `bfn` may scatter to the W
/// elements' nodes without synchronization.
template <int W, class BatchFn, class ScalarFn>
void for_each_element_batched_colored(const StructuredMesh& mesh, BatchFn&& bfn,
                                      ScalarFn&& sfn) {
  parallel_for_phased(
      8,
      [&](int color) {
        const Index n = color_extent(mesh, color).count();
        return n / W + n % W; // full batches, then tail elements
      },
      [&](int color, Index i) {
        const ColorExtent ce = color_extent(mesh, color);
        const Index nb = ce.count() / W;
        if (i < nb) {
          Index elems[W];
          for (int l = 0; l < W; ++l) elems[l] = ce.element(mesh, i * W + l);
          bfn(elems);
        } else {
          sfn(ce.element(mesh, nb * W + (i - nb)));
        }
      });
}

} // namespace ptatin
