// Jacobi-preconditioned Chebyshev iteration: the paper's multigrid smoother.
//
// §III-C fixes the production smoother as "Jacobi-preconditioned Chebyshev
// iterations targeting the interval [0.2 λmax, 1.1 λmax], where λmax is an
// estimate of the largest eigenvalue of the Jacobi-preconditioned operator".
// Chebyshev needs only operator applications and pointwise scaling, so it
// runs unchanged on assembled, matrix-free, and tensor-product levels and
// exposes the fine-grained parallelism multiplicative smoothers lack.
#pragma once

#include "ksp/operator.hpp"
#include "ksp/pc.hpp"
#include "ksp/settings.hpp"

namespace ptatin {

struct ChebyshevOptions {
  /// Interval as fractions of the estimated λmax (paper: [0.2, 1.1]).
  Real emin_fraction = 0.2;
  Real emax_fraction = 1.1;
  /// Iterations used by the λmax estimator.
  int eig_est_iterations = 12;
  /// Fused sweep: one operator apply plus ONE pass over the vectors per
  /// iteration (residual + Jacobi scale + recurrence + correction) instead
  /// of five. Bitwise identical to the unfused path (the kernel mirrors the
  /// Vector method statement forms, verified by the coarse parity tests);
  /// the knob exists for those tests and for perf A/B runs.
  bool fused = true;
};

/// A reusable Chebyshev smoother: setup estimates λmax of D^{-1}A once, then
/// smooth() runs a fixed number of iterations (no convergence test — this is
/// the V(m,m) smoother, not a solver).
class ChebyshevSmoother {
public:
  ChebyshevSmoother() = default;

  /// `diag` is the operator diagonal; λmax is estimated internally.
  void setup(const LinearOperator& a, Vector diag, const ChebyshevOptions& opt);

  /// In-place smoothing of A x = b starting from x (zero or nonzero).
  void smooth(const Vector& b, Vector& x, int iterations) const;

  /// Run the same semi-iteration as a stand-alone solver with per-iteration
  /// residual monitoring and the shared convergence/divergence guards (NaN,
  /// dtol). The MG smoothing path stays on `smooth`, which adds no norm
  /// reductions to the hot loop.
  SolveStats solve(const Vector& b, Vector& x, const KrylovSettings& s) const;

  /// True when setup had to fall back to a default spectral interval
  /// because the eigenvalue estimate was NaN/Inf or nonpositive.
  bool eig_estimate_fallback() const { return eig_fallback_; }

  Real lambda_max() const { return lambda_max_; }
  Real interval_min() const { return emin_; }
  Real interval_max() const { return emax_; }

private:
  const LinearOperator* a_ = nullptr;
  Vector inv_diag_;
  Real lambda_max_ = 0.0, emin_ = 0.0, emax_ = 0.0;
  bool eig_fallback_ = false;
  bool fused_ = true;
  /// Persistent sweep scratch, sized at setup: smooth() sits on the V-cycle
  /// hot path and must not heap-allocate per call (docs/KERNELS.md).
  mutable Vector r_, z_, p_;
};

} // namespace ptatin
