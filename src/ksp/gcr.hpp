// GCR(m): generalized conjugate residuals.
//
// The paper's preferred outer method (§III-A): flexible (tolerates nonlinear
// preconditioners such as inner V-cycles), and — unlike GMRES — keeps the
// current iterate and *explicit residual* available at every iteration, which
// is what allows the per-field (momentum vs pressure) residual monitoring of
// Figure 2 without extra operator applications.
#pragma once

#include "ksp/operator.hpp"
#include "ksp/pc.hpp"
#include "ksp/settings.hpp"

namespace ptatin {

SolveStats gcr_solve(const LinearOperator& a, const Preconditioner& pc,
                     const Vector& b, Vector& x, const KrylovSettings& s);

} // namespace ptatin
