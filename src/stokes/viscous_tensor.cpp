// Sum-factorized tensor-product viscous operator (§III-D, Eq. 19).
//
// The reference gradient D_e is never formed: it is applied as the three
// Kronecker factors (D̂⊗B̂⊗B̂, B̂⊗D̂⊗B̂, B̂⊗B̂⊗D̂) through one-dimensional
// contractions ("sum factorization"), reducing the gradient cost by ~3x and
// shrinking per-element state to a few cache lines — the property that lets
// the paper vectorize over elements and reach >30% of peak.
#include "stokes/tensor_contract.hpp"
#include "stokes/viscous_ops.hpp"

namespace ptatin {

using tensor_kernel::tensor_gradient;
using tensor_kernel::tensor_gradient_transpose;

void TensorViscousOperator::apply_unmasked(const Vector& x, Vector& y) const {
  const auto& tab = q2_tabulation();
  y.set_all(0.0);
  const Real* xp = x.data();
  Real* yp = y.data();

  for_each_element_colored(mesh_, [&](Index e) {
    Index nodes[kQ2NodesPerEl];
    mesh_.element_nodes(e, nodes);

    // Component-major local state: u[c][27].
    Real u[3][kQ2NodesPerEl];
    for (int i = 0; i < kQ2NodesPerEl; ++i)
      for (int c = 0; c < 3; ++c) u[c][i] = xp[velocity_dof(nodes[i], c)];

    ElementGeometry g;
    element_geometry(mesh_, e, g);

    // Reference gradients of all three components at all quadrature points.
    Real gref[3][3][kQuadPerEl]; // [component][ref-direction][q]
    for (int c = 0; c < 3; ++c)
      tensor_gradient(tab.B1, tab.D1, u[c], gref[c][0], gref[c][1],
                      gref[c][2]);

    // Quadrature loop: map to physical, stress, map back to reference.
    Real sref[3][3][kQuadPerEl]; // [component][ref-direction][q]
    for (int q = 0; q < kQuadPerEl; ++q) {
      const Mat3& ga = g.gamma[q]; // gamma[3d + r] = dxi_d/dx_r
      Real G[3][3];                // physical gradient
      for (int c = 0; c < 3; ++c)
        for (int r = 0; r < 3; ++r)
          G[c][r] = gref[c][0][q] * ga[0 + r] + gref[c][1][q] * ga[3 + r] +
                    gref[c][2][q] * ga[6 + r];

      const Real eta = coeff_.eta(e, q);
      const Real scale = g.wdetj[q];
      const Real Dxx = G[0][0], Dyy = G[1][1], Dzz = G[2][2];
      const Real Dxy = Real(0.5) * (G[0][1] + G[1][0]);
      const Real Dxz = Real(0.5) * (G[0][2] + G[2][0]);
      const Real Dyz = Real(0.5) * (G[1][2] + G[2][1]);

      Real s[3][3];
      s[0][0] = 2 * eta * Dxx;
      s[1][1] = 2 * eta * Dyy;
      s[2][2] = 2 * eta * Dzz;
      s[0][1] = s[1][0] = 2 * eta * Dxy;
      s[0][2] = s[2][0] = 2 * eta * Dxz;
      s[1][2] = s[2][1] = 2 * eta * Dyz;

      if (newton_) {
        const Real* d0 = coeff_.d0(e, q);
        const Real dd = d0[0] * Dxx + d0[1] * Dyy + d0[2] * Dzz +
                        2 * (d0[3] * Dxy + d0[4] * Dxz + d0[5] * Dyz);
        const Real f = 2 * coeff_.deta(e, q) * dd;
        s[0][0] += f * d0[0];
        s[1][1] += f * d0[1];
        s[2][2] += f * d0[2];
        s[0][1] += f * d0[3];
        s[1][0] += f * d0[3];
        s[0][2] += f * d0[4];
        s[2][0] += f * d0[4];
        s[1][2] += f * d0[5];
        s[2][1] += f * d0[5];
      }

      // Reference stress: sref[c][d] = scale * sum_r s[c][r] gamma[d][r].
      for (int c = 0; c < 3; ++c)
        for (int d = 0; d < 3; ++d)
          sref[c][d][q] = scale * (s[c][0] * ga[3 * d + 0] +
                                   s[c][1] * ga[3 * d + 1] +
                                   s[c][2] * ga[3 * d + 2]);
    }

    // Transpose contractions and scatter.
    Real ye[3][kQ2NodesPerEl] = {};
    for (int c = 0; c < 3; ++c)
      tensor_gradient_transpose(tab.B1, tab.D1, sref[c][0], sref[c][1],
                                sref[c][2], ye[c]);

    for (int i = 0; i < kQ2NodesPerEl; ++i)
      for (int c = 0; c < 3; ++c) yp[velocity_dof(nodes[i], c)] += ye[c][i];
  });
}

OperatorCostModel TensorViscousOperator::cost_model() const {
  // §III-D analytic model: 15228 flops; bytes as for MF.
  return {15228.0, 1008.0, 2376.0};
}

} // namespace ptatin
