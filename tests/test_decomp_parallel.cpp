// Tests for the subdomain-parallel execution engine (docs/PARALLELISM.md):
// the decomposed pack -> exchange -> accumulate paths must agree with the
// global colored loops to rounding (<= 1e-12), be bitwise reproducible for a
// fixed decomposition shape, and leave the Krylov iteration counts of a full
// Stokes solve identical across shapes (the §II-D guarantee that the
// decomposition is a pure execution-strategy choice, not a discretization
// change).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "fem/bc.hpp"
#include "fem/subdomain_engine.hpp"
#include "mpm/advection.hpp"
#include "mpm/points.hpp"
#include "mpm/projection.hpp"
#include "obs/report.hpp"
#include "ptatin/config.hpp"
#include "ptatin/models_sinker.hpp"
#include "saddle/stokes_solver.hpp"
#include "stokes/fields.hpp"
#include "stokes/viscous_ops.hpp"

namespace ptatin {
namespace {

StructuredMesh make_deformed_mesh(Index mx, Index my, Index mz) {
  StructuredMesh mesh = StructuredMesh::box(mx, my, mz, {0, 0, 0}, {1, 1, 1});
  mesh.deform([](const Vec3& x) {
    return Vec3{x[0] + 0.04 * std::sin(3 * x[1]) * x[2],
                x[1] + 0.05 * std::cos(2 * x[0]),
                x[2] + 0.03 * x[0] * x[1]};
  });
  return mesh;
}

QuadCoefficients make_variable_coeff(const StructuredMesh& mesh,
                                     bool with_newton, unsigned seed = 3) {
  QuadCoefficients c(mesh.num_elements());
  Rng rng(seed);
  for (Index e = 0; e < mesh.num_elements(); ++e)
    for (int q = 0; q < kQuadPerEl; ++q) {
      c.eta(e, q) = std::pow(10.0, rng.uniform(-2, 2));
      c.rho(e, q) = rng.uniform(0.9, 1.3);
    }
  if (with_newton) {
    c.allocate_newton();
    for (Index e = 0; e < mesh.num_elements(); ++e)
      for (int q = 0; q < kQuadPerEl; ++q) {
        c.deta(e, q) = -rng.uniform(0, 0.5);
        for (int t = 0; t < kSymSize; ++t) c.d0(e, q)[t] = rng.uniform(-1, 1);
      }
  }
  return c;
}

Vector random_vector(Index n, unsigned seed) {
  Vector v(n);
  Rng rng(seed);
  for (Index i = 0; i < n; ++i) v[i] = rng.uniform(-1, 1);
  return v;
}

Real max_rel_diff(const Vector& a, const Vector& b) {
  Real scale = 0, diff = 0;
  for (Index i = 0; i < a.size(); ++i) {
    scale = std::max(scale, std::abs(a[i]));
    diff = std::max(diff, std::abs(a[i] - b[i]));
  }
  return scale > 0 ? diff / scale : diff;
}

// --- engine partition invariants --------------------------------------------

TEST(SubdomainEngine, ElementClassesPartitionTheMesh) {
  StructuredMesh mesh = make_deformed_mesh(5, 4, 3);
  SubdomainEngine eng(mesh, 3, 2, 1);
  std::vector<int> hits(mesh.num_elements(), 0);
  for (Index s = 0; s < eng.num_subdomains(); ++s) {
    for (Index e : eng.interior_elements(s)) hits[e] += 1;
    for (Index e : eng.boundary_elements(s)) hits[e] += 1;
  }
  for (Index e = 0; e < mesh.num_elements(); ++e) EXPECT_EQ(hits[e], 1);
  EXPECT_EQ(eng.num_interior_elements() + eng.num_boundary_elements(),
            mesh.num_elements());
  EXPECT_GT(eng.num_boundary_elements(), 0);
}

TEST(SubdomainEngine, OwnedNodesPartitionTheLattice) {
  StructuredMesh mesh = make_deformed_mesh(5, 4, 3);
  SubdomainEngine eng(mesh, 2, 2, 2);
  std::vector<int> owner_count(mesh.num_nodes(), 0);
  for (Index s = 0; s < eng.num_subdomains(); ++s)
    for (Index id : eng.owned_nodes(s)) owner_count[id] += 1;
  for (Index n = 0; n < mesh.num_nodes(); ++n)
    EXPECT_EQ(owner_count[n], 1) << "node " << n;
}

TEST(SubdomainEngine, SingleSubdomainHasNoHalo) {
  StructuredMesh mesh = make_deformed_mesh(4, 4, 4);
  SubdomainEngine eng(mesh, 1, 1, 1);
  EXPECT_EQ(eng.halo_points_per_exchange(), 0);
  EXPECT_EQ(eng.num_boundary_elements(), 0);
  EXPECT_EQ(eng.num_interior_elements(), mesh.num_elements());

  // The degenerate engine must still run the protocol correctly.
  QuadCoefficients coeff = make_variable_coeff(mesh, false);
  DirichletBc bc(num_velocity_dofs(mesh));
  auto global = make_viscous_backend(
      KernelSpec{.type = FineOperatorType::kTensor}, mesh, coeff,
      &bc);
  auto decomp = make_viscous_backend(
      KernelSpec{.type = FineOperatorType::kTensor, .engine = &eng}, mesh, coeff,
      &bc);
  Vector x = random_vector(global->rows(), 11);
  Vector y0(x.size()), y1(x.size());
  global->apply(x, y0);
  decomp->apply(x, y1);
  // The engine sweeps elements lexicographically while the global path uses
  // the colored order, so agreement is to rounding (like any shape change).
  EXPECT_LE(max_rel_diff(y0, y1), 1e-12);
}

// --- operator apply equivalence ---------------------------------------------

TEST(SubdomainEngine, AllBackendsMatchGlobalApplyTo1e12) {
  // Uneven 3x2x1 split of a 5x4x3 deformed mesh: every direction has ragged
  // slabs, and the element kernels see non-constant Jacobians.
  StructuredMesh mesh = make_deformed_mesh(5, 4, 3);
  QuadCoefficients coeff = make_variable_coeff(mesh, true);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  SubdomainEngine eng(mesh, 3, 2, 1);

  const FineOperatorType types[] = {FineOperatorType::kMatrixFree,
                                    FineOperatorType::kTensor,
                                    FineOperatorType::kTensorC};
  Vector x = random_vector(num_velocity_dofs(mesh), 7);
  for (FineOperatorType t : types) {
    auto global = make_viscous_backend(KernelSpec{.type = t},
                                       mesh, coeff, &bc);
    auto decomp =
        make_viscous_backend(KernelSpec{.type = t, .engine = &eng}, mesh, coeff, &bc);
    for (bool newton : {false, true}) {
      if (newton && t == FineOperatorType::kTensorC) continue; // Picard-only
      global->set_newton(newton);
      decomp->set_newton(newton);
      Vector y0(x.size()), y1(x.size());
      global->apply(x, y0); // masked: BC rows pass through
      decomp->apply(x, y1);
      EXPECT_LE(max_rel_diff(y0, y1), 1e-12)
          << global->name() << " newton=" << newton;
    }
  }
}

TEST(SubdomainEngine, FixedShapeApplyIsBitwiseReproducible) {
  StructuredMesh mesh = make_deformed_mesh(6, 5, 4);
  QuadCoefficients coeff = make_variable_coeff(mesh, false);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  SubdomainEngine eng(mesh, 2, 2, 2);
  auto op = make_viscous_backend(
      KernelSpec{.type = FineOperatorType::kTensor, .engine = &eng}, mesh, coeff,
      &bc);
  Vector x = random_vector(op->rows(), 13);
  Vector y0(x.size()), y1(x.size());
  op->apply(x, y0);
  for (int rep = 0; rep < 3; ++rep) {
    op->apply(x, y1);
    for (Index i = 0; i < x.size(); ++i)
      EXPECT_EQ(y0[i], y1[i]) << "apply not bitwise-stable at dof " << i;
  }
}

TEST(SubdomainEngine, EnginePathTakesPrecedenceOverBatchWidth) {
  StructuredMesh mesh = make_deformed_mesh(4, 4, 4);
  QuadCoefficients coeff = make_variable_coeff(mesh, false);
  DirichletBc bc(num_velocity_dofs(mesh));
  SubdomainEngine eng(mesh, 2, 1, 1);
  // batch_width 8 would take the SIMD path; with an engine the decomposed
  // path must win and still match the scalar global result to rounding.
  auto batched_decomp = make_viscous_backend(
      KernelSpec{.type = FineOperatorType::kTensor, .batch_width = 8,
                 .engine = &eng}, mesh, coeff,
      &bc);
  auto scalar_decomp = make_viscous_backend(
      KernelSpec{.type = FineOperatorType::kTensor, .engine = &eng}, mesh, coeff,
      &bc);
  Vector x = random_vector(batched_decomp->rows(), 17);
  Vector y0(x.size()), y1(x.size());
  batched_decomp->apply(x, y0);
  scalar_decomp->apply(x, y1);
  for (Index i = 0; i < x.size(); ++i)
    EXPECT_EQ(y0[i], y1[i]) << "engine must shadow batch_width at " << i;
}

// --- assembly / sampling paths ----------------------------------------------

TEST(SubdomainEngine, BodyForceMatchesGlobalTo1e12) {
  StructuredMesh mesh = make_deformed_mesh(5, 4, 3);
  QuadCoefficients coeff = make_variable_coeff(mesh, false);
  SubdomainEngine eng(mesh, 2, 2, 1);
  const Vec3 g{0.3, -9.8, 0.1};
  Vector f0 = assemble_body_force(mesh, coeff, g);
  Vector f1 = assemble_body_force(mesh, coeff, g, &eng);
  EXPECT_LE(max_rel_diff(f0, f1), 1e-12);
}

TEST(SubdomainEngine, StrainRatesAreBitwiseGlobal) {
  StructuredMesh mesh = make_deformed_mesh(4, 3, 5);
  SubdomainEngine eng(mesh, 1, 2, 2);
  Vector u = random_vector(num_velocity_dofs(mesh), 23);
  std::vector<StrainRateSample> s0, s1;
  evaluate_strain_rates(mesh, u, s0);
  evaluate_strain_rates(mesh, u, s1, &eng);
  ASSERT_EQ(s0.size(), s1.size());
  // Outputs are per-element disjoint: the engine path only re-partitions the
  // loop, so every sample must be bitwise identical.
  for (std::size_t i = 0; i < s0.size(); ++i) {
    EXPECT_EQ(s0[i].j2, s1[i].j2);
    for (int t = 0; t < kSymSize; ++t) EXPECT_EQ(s0[i].d[t], s1[i].d[t]);
  }
}

// --- MPM paths ---------------------------------------------------------------

TEST(SubdomainEngine, ProjectionMatchesSerialTo1e12) {
  StructuredMesh mesh = make_deformed_mesh(4, 4, 3);
  SubdomainEngine eng(mesh, 2, 1, 3);
  MaterialPoints points;
  layout_points(mesh, 2, [](const Vec3&) { return 0; }, points, 0.4);
  std::vector<Real> values(points.size());
  Rng rng(5);
  for (Index i = 0; i < points.size(); ++i) values[i] = rng.uniform(-2, 2);

  ProjectionResult serial = project_to_vertices(mesh, points, values, 0.5);
  ProjectionResult decomp =
      project_to_vertices(mesh, points, values, 0.5, &eng);
  ASSERT_EQ(serial.vertex_values.size(), decomp.vertex_values.size());
  EXPECT_EQ(serial.empty_vertices, decomp.empty_vertices);
  EXPECT_LE(max_rel_diff(serial.vertex_values, decomp.vertex_values), 1e-12);
}

TEST(SubdomainEngine, ProjectionFallbackForEmptyVertices) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  SubdomainEngine eng(mesh, 2, 2, 1);
  // One point in one corner element: almost every vertex has empty support
  // and must take the fallback on both paths.
  MaterialPoints points;
  points.add(Vec3{0.05, 0.05, 0.05}, 0);
  locate_all(mesh, points);
  std::vector<Real> values = {3.0};
  ProjectionResult serial = project_to_vertices(mesh, points, values, -7.0);
  ProjectionResult decomp =
      project_to_vertices(mesh, points, values, -7.0, &eng);
  EXPECT_GT(serial.empty_vertices, 0);
  EXPECT_EQ(serial.empty_vertices, decomp.empty_vertices);
  for (Index v = 0; v < mesh.num_vertices(); ++v)
    EXPECT_EQ(serial.vertex_values[v], decomp.vertex_values[v]);
}

TEST(SubdomainEngine, AdvectionIsBitwiseGlobal) {
  StructuredMesh mesh = make_deformed_mesh(4, 4, 4);
  SubdomainEngine eng(mesh, 2, 2, 2);
  Vector u = random_vector(num_velocity_dofs(mesh), 29);
  MaterialPoints a, b;
  layout_points(mesh, 2, [](const Vec3&) { return 0; }, a, 0.3);
  b = a;
  const AdvectionStats sa = advect_points_rk2(mesh, u, 0.01, a);
  const AdvectionStats sb = advect_points_rk2(mesh, u, 0.01, b, &eng);
  EXPECT_EQ(sa.advected, sb.advected);
  EXPECT_EQ(sa.left_domain, sb.left_domain);
  ASSERT_EQ(a.size(), b.size());
  for (Index i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.element(i), b.element(i));
    for (int c = 0; c < 3; ++c)
      EXPECT_EQ(a.position(i)[c], b.position(i)[c]) << "point " << i;
  }
}

// --- full solve across shapes (the acceptance criterion) ---------------------

TEST(SubdomainEngine, StokesSolveIterationsIdenticalAcrossShapes) {
  StructuredMesh mesh = StructuredMesh::box(8, 8, 8, {0, 0, 0}, {1, 1, 1});
  SinkerParams sp;
  sp.mx = sp.my = sp.mz = 8;
  ModelSetup setup = make_sinker_model(sp);
  QuadCoefficients coeff = make_variable_coeff(setup.mesh, false, 9);
  DirichletBc bc = sinker_boundary_conditions(setup.mesh);
  Vector f = assemble_body_force(setup.mesh, coeff, {0, 0, -9.8});

  SolverConfig cfg;
  cfg.stokes().gmg.levels = 2;
  cfg.stokes().krylov.max_it = 300;

  auto run = [&](Index px, Index py, Index pz) {
    SolverConfig shaped = cfg;
    shaped.decomp(px, py, pz);
    std::unique_ptr<SubdomainEngine> eng = shaped.make_engine(setup.mesh);
    auto solver =
        shaped.make_stokes_solver(setup.mesh, coeff, bc, eng.get());
    StokesSolveResult res = solver->solve(f);
    EXPECT_TRUE(res.stats.converged)
        << px << "x" << py << "x" << pz << " failed to converge";
    return res;
  };

  StokesSolveResult base = run(1, 1, 1); // null engine: global paths
  StokesSolveResult d222 = run(2, 2, 2);
  StokesSolveResult d221 = run(2, 2, 1);

  EXPECT_EQ(base.stats.iterations, d222.stats.iterations);
  EXPECT_EQ(base.stats.iterations, d221.stats.iterations);
  EXPECT_LE(max_rel_diff(base.u, d222.u), 1e-12);
  EXPECT_LE(max_rel_diff(base.p, d222.p), 1e-12);
  EXPECT_LE(max_rel_diff(base.u, d221.u), 1e-12);
  EXPECT_LE(max_rel_diff(base.p, d221.p), 1e-12);
}

// --- stats & reporting -------------------------------------------------------

TEST(SubdomainEngine, StatsCountAppliesAndHaloBytes) {
  StructuredMesh mesh = make_deformed_mesh(4, 4, 4);
  QuadCoefficients coeff = make_variable_coeff(mesh, false);
  DirichletBc bc(num_velocity_dofs(mesh));
  SubdomainEngine eng(mesh, 2, 2, 1);
  auto op = make_viscous_backend(
      KernelSpec{.type = FineOperatorType::kTensor, .engine = &eng}, mesh, coeff,
      &bc);
  eng.reset_stats();
  Vector x = random_vector(op->rows(), 3);
  Vector y(x.size());
  op->apply(x, y);
  op->apply(x, y);
  const DecompStats st = eng.stats();
  EXPECT_EQ(st.px, 2);
  EXPECT_EQ(st.py, 2);
  EXPECT_EQ(st.pz, 1);
  EXPECT_EQ(st.applies, 2);
  // Every apply exchanges all halo points, 3 components of one Real each;
  // sent and received bytes mirror each other by construction.
  const long long expect_bytes =
      2ll * eng.halo_points_per_exchange() * 3 * sizeof(Real);
  EXPECT_EQ(st.halo_bytes_sent, expect_bytes);
  EXPECT_EQ(st.halo_bytes_received, expect_bytes);
  EXPECT_EQ(st.interior_elements + st.boundary_elements,
            mesh.num_elements());
}

TEST(SubdomainEngine, ReportDecompositionSectionRoundTrips) {
  obs::SolverReport rep;
  obs::DecompRecord rec;
  rec.px = 2;
  rec.py = 2;
  rec.pz = 1;
  rec.applies = 42;
  rec.halo_bytes_sent = 1024;
  rec.halo_bytes_received = 1024;
  rec.exchange_seconds = 0.25;
  rec.interior_seconds = 1.5;
  rec.boundary_seconds = 0.75;
  rec.interior_elements = 40;
  rec.boundary_elements = 24;
  rep.set_decomposition(rec);

  const obs::SolverReport back = obs::SolverReport::parse(
      rep.to_json_string());
  ASSERT_TRUE(back.has_decomposition());
  const obs::DecompRecord& r = back.decomposition();
  EXPECT_EQ(r.px, 2);
  EXPECT_EQ(r.py, 2);
  EXPECT_EQ(r.pz, 1);
  EXPECT_EQ(r.applies, 42);
  EXPECT_EQ(r.halo_bytes_sent, 1024);
  EXPECT_EQ(r.halo_bytes_received, 1024);
  EXPECT_DOUBLE_EQ(r.exchange_seconds, 0.25);
  EXPECT_DOUBLE_EQ(r.interior_seconds, 1.5);
  EXPECT_DOUBLE_EQ(r.boundary_seconds, 0.75);
  EXPECT_EQ(r.interior_elements, 40);
  EXPECT_EQ(r.boundary_elements, 24);
}

// --- options / config --------------------------------------------------------

TEST(SolverConfig, ParsesDecompShapes) {
  auto one = parse_decomp_shapes("2x2x2");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0][0], 2);
  EXPECT_EQ(one[0][1], 2);
  EXPECT_EQ(one[0][2], 2);

  auto commas = parse_decomp_shapes("3,2,1");
  ASSERT_EQ(commas.size(), 1u);
  EXPECT_EQ(commas[0][0], 3);
  EXPECT_EQ(commas[0][2], 1);

  auto sweep = parse_decomp_shapes("1x1x1,2x2x1,2x2x2");
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[1][0], 2);
  EXPECT_EQ(sweep[1][2], 1);
  EXPECT_EQ(sweep[2][2], 2);

  EXPECT_THROW(parse_decomp_shapes("2x2"), Error);
  EXPECT_THROW(parse_decomp_shapes("0x1x1"), Error);
}

TEST(SolverConfig, FromOptionsWiresDecompAndSolverKnobs) {
  const char* argv[] = {"prog", "-decomp", "2,2,1", "--backend", "mf",
                        "-levels", "2", "-safeguard", "false"};
  Options o = Options::from_args(9, argv);
  SolverConfig cfg = SolverConfig::from_options(o);
  EXPECT_EQ(cfg.decomp_shape()[0], 2);
  EXPECT_EQ(cfg.decomp_shape()[1], 2);
  EXPECT_EQ(cfg.decomp_shape()[2], 1);
  EXPECT_EQ(cfg.stokes().kernel.type, FineOperatorType::kMatrixFree);
  EXPECT_EQ(cfg.stokes().gmg.levels, 2);
  EXPECT_FALSE(cfg.use_safeguard());

  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  auto eng = cfg.make_engine(mesh);
  ASSERT_NE(eng, nullptr);
  EXPECT_EQ(eng->num_subdomains(), 4);
  // 1x1x1 = global paths, no engine.
  EXPECT_EQ(SolverConfig().make_engine(mesh), nullptr);
}

TEST(OptionsUnified, DashAndDoubleDashResolveIdentically) {
  const char* argv[] = {"prog", "-alpha", "1", "--beta", "2.5", "--flag"};
  Options o = Options::from_args(6, argv);
  EXPECT_EQ(o.get_int("alpha", 0), 1);
  EXPECT_EQ(o.get_int("-alpha", 0), 1);
  EXPECT_EQ(o.get_int("--alpha", 0), 1);
  EXPECT_DOUBLE_EQ(o.get_real("beta", 0), 2.5);
  EXPECT_TRUE(o.get_bool("flag", false));
  EXPECT_TRUE(o.has("--flag"));

  Options set_test;
  set_test.set("--gamma", "7");
  EXPECT_EQ(set_test.get_int("gamma", 0), 7);
}

TEST(OptionsUnified, TypedListGetters) {
  Options o;
  o.set("grids", "4,8,16");
  o.set("shape", "2x2x1");
  o.set("names", "mx_sweep,tensc");
  const std::vector<Index> grids = o.get_index_list("grids");
  ASSERT_EQ(grids.size(), 3u);
  EXPECT_EQ(grids[2], 16);
  const std::vector<Index> shape = o.get_index_list("shape");
  ASSERT_EQ(shape.size(), 3u);
  EXPECT_EQ(shape[0], 2);
  EXPECT_EQ(shape[2], 1);
  // 'x' only separates pure shape strings; text lists keep their 'x'.
  const std::vector<std::string> names = o.get_list("names");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "mx_sweep");
  EXPECT_TRUE(o.get_list("absent").empty());
}

TEST(OptionsUnified, HelpTextContainsRegisteredDescriptions) {
  Options::describe("zz_test_flag", "N", "a test-only flag");
  const std::string help = Options::help_text();
  EXPECT_NE(help.find("-zz_test_flag N"), std::string::npos);
  EXPECT_NE(help.find("a test-only flag"), std::string::npos);
}

} // namespace
} // namespace ptatin
