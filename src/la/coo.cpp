#include "la/coo.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "la/csr.hpp"

namespace ptatin {

void CooMatrix::add(Index i, Index j, Real v) {
  PT_DEBUG_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  is_.push_back(i);
  js_.push_back(j);
  vals_.push_back(v);
}

void CooMatrix::reserve(std::size_t n) {
  is_.reserve(n);
  js_.reserve(n);
  vals_.reserve(n);
}

CsrMatrix CooMatrix::to_csr() const {
  const std::size_t n = vals_.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return is_[a] != is_[b] ? is_[a] < is_[b] : js_[a] < js_[b];
  });

  std::vector<Index> ci;
  std::vector<Real> va;
  std::vector<Index> row_count(rows_, 0);
  ci.reserve(n);
  va.reserve(n);

  Index last_i = -1, last_j = -1;
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t k = order[t];
    const Index i = is_[k], j = js_[k];
    if (i == last_i && j == last_j) {
      va.back() += vals_[k]; // duplicate entry: sum
    } else {
      ci.push_back(j);
      va.push_back(vals_[k]);
      ++row_count[i];
      last_i = i;
      last_j = j;
    }
  }

  std::vector<Index> rp(rows_ + 1, 0);
  for (Index i = 0; i < rows_; ++i) rp[i + 1] = rp[i] + row_count[i];
  return CsrMatrix(rows_, cols_, std::move(rp), std::move(ci), std::move(va));
}

} // namespace ptatin
