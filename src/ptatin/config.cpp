#include "ptatin/config.hpp"

#include "common/error.hpp"
#include "fem/kernel_registry.hpp"
#include "fem/subdomain_engine.hpp"
#include "saddle/stokes_solver.hpp"
#include "stokes/viscous_qk.hpp"

namespace ptatin {

namespace {

// -backend parsing lives in the kernel registry (parse_fine_operator) —
// the one place that spells the back-end tokens.

GmgCoarseSolve parse_coarse(const std::string& s) {
  if (s == "bjacobi") return GmgCoarseSolve::kBJacobiLu;
  if (s == "asmcg") return GmgCoarseSolve::kAsmCg;
  PT_ASSERT_MSG(s == "amg", "unknown -coarse (expected amg|bjacobi|asmcg)");
  return GmgCoarseSolve::kAmg;
}

} // namespace

Options options_from_json(const obs::JsonValue& obj) {
  PT_ASSERT_MSG(obj.is_object(), "job spec must be a JSON object");
  Options o;
  for (const auto& [key, v] : obj.members()) {
    switch (v.type()) {
      case obs::JsonValue::Type::kBool:
        o.set(key, v.as_bool() ? "true" : "false");
        break;
      case obs::JsonValue::Type::kNumber:
        o.set(key, obs::json_number(v.as_number()));
        break;
      case obs::JsonValue::Type::kString:
        o.set(key, v.as_string());
        break;
      default:
        PT_THROW("job spec field \"" + key +
                 "\" must be a scalar (string, number, or bool)");
    }
  }
  return o;
}

std::vector<std::array<Index, 3>> parse_decomp_shapes(
    const std::string& spec) {
  Options o;
  o.set("decomp", spec);
  const std::vector<Index> flat = o.get_index_list("decomp");
  PT_ASSERT_MSG(!flat.empty() && flat.size() % 3 == 0,
                "-decomp expects {px,py,pz} triples (\"2x2x2\" or "
                "\"1x1x1,2x2x1\")");
  std::vector<std::array<Index, 3>> shapes;
  for (std::size_t i = 0; i < flat.size(); i += 3) {
    PT_ASSERT_MSG(flat[i] >= 1 && flat[i + 1] >= 1 && flat[i + 2] >= 1,
                  "-decomp factors must be >= 1");
    shapes.push_back({flat[i], flat[i + 1], flat[i + 2]});
  }
  return shapes;
}

void SolverConfig::describe_options() {
  Options::describe("backend", "asmb|mf|tens|tensc", "J_uu operator back-end");
  Options::describe("op_batch_width", "0|4|8",
                    "cross-element SIMD batching of the matrix-free\n"
                    "back-ends (0 = scalar, docs/KERNELS.md)");
  Options::describe("order", "2|3|4",
                    "Qk velocity polynomial order (default 2). The full\n"
                    "solver stack runs k=2; k=3,4 select the standalone\n"
                    "matrix-free applies (kernel registry, docs/KERNELS.md)");
  Options::describe("decomp", "px,py,pz",
                    "subdomain decomposition shape (\"2x2x2\" or \"2,2,2\";\n"
                    "default 1,1,1 = global paths, docs/PARALLELISM.md)");
  Options::describe("levels", "N", "GMG levels (default auto)");
  Options::describe("coarse", "amg|bjacobi|asmcg", "coarse-grid solver");
  Options::describe("mg_rap_cache", "true|false",
                    "cache Galerkin RAP patterns across operator rebuilds");
  Options::describe("mg_blocked_spmv", "true|false",
                    "blocked SELL-8 SpMV for assembled coarse levels");
  Options::describe("mg_fused_smoother", "true|false",
                    "fused Chebyshev sweep (one vector pass per iteration)");
  Options::describe("amg_coarse_size", "N",
                    "AMG coarsening stops at this many rows");
  Options::describe("newton", "true|false", "Newton linearization");
  Options::describe("nonlinear_rtol", "X", "per-step ||F|| reduction");
  Options::describe("max_newton", "N", "Newton iteration cap");
  Options::describe("krylov_rtol", "X", "outer Krylov relative tolerance");
  Options::describe("krylov_maxit", "N", "outer Krylov iteration cap");
  Options::describe("dtol", "X", "Krylov divergence tolerance");
  Options::describe("picard_fallback", "true|false",
                    "Newton failure => Picard restart");
  Options::describe("ppd", "N", "initial material points per direction");
  Options::describe("ale", "true|false", "ALE free-surface mesh update");
  Options::describe("safeguard", "true|false",
                    "rollback/retry failed steps (default true,\n"
                    "docs/ROBUSTNESS.md)");
  Options::describe("max_retries", "N", "dt-cut retries per step (default 3)");
  Options::describe("dt_cut_factor", "X",
                    "dt multiplier per retry (default 0.5)");
  Options::describe("dt_grow", "X", "dt cap growth per clean step");
  Options::describe("health_every", "N",
                    "health-check cadence in steps (0 = only before\n"
                    "checkpoints)");
  Options::describe("checkpoint_dir", "DIR",
                    "durable checkpoint rotation (atomic publish,\n"
                    "CRC-verified)");
  Options::describe("checkpoint_every", "N", "checkpoint cadence (0 = off)");
  Options::describe("checkpoint_keep", "K",
                    "checkpoints kept in DIR (default 3)");
  Options::describe("seal_state", "true|false",
                    "CRC-seal model state between steps and heal\n"
                    "detected corruption by same-dt replay (default\n"
                    "true, docs/ROBUSTNESS.md)");
  Options::describe("scrub_every", "N",
                    "scrub cadence over sealed setup-immutable\n"
                    "operator data in steps (0 = off); also arms the\n"
                    "GMG operator seals");
  Options::describe("sentinel_every", "N",
                    "Krylov SDC sentinel: recompute the true residual\n"
                    "every N iterations and cross-check the recurrence\n"
                    "(0 = off)");
  Options::describe("sentinel_tol", "X",
                    "sentinel drift tolerance relative to ||r_0||\n"
                    "(default 1e-6)");
  Options::describe("transport", "memory|process",
                    "halo-exchange / migration backend (default memory;\n"
                    "process forks crash-isolated workers,\n"
                    "docs/TRANSPORT.md)");
  Options::describe("heartbeat_ms", "N",
                    "worker heartbeat period in ms (default 50)");
  Options::describe("worker_timeout_ms", "N",
                    "silence after which a worker is declared dead\n"
                    "(default 2000; must be >= heartbeat_ms)");
  Options::describe("max_worker_restarts", "N",
                    "restarts per worker before degraded delivery\n"
                    "(default 2)");
  Options::describe("backoff_base_ms", "N",
                    "base of the exponential respawn backoff (default 10)");
}

SolverConfig SolverConfig::from_options(const Options& o) {
  describe_options();
  SolverConfig cfg;
  PtatinOptions& po = cfg.ptatin_;

  po.points_per_dim = o.get_int("ppd", 3);
  po.update_mesh = o.get_bool("ale", true);
  po.nonlinear.max_it = o.get_int("max_newton", 5);
  po.nonlinear.rtol = o.get_real("nonlinear_rtol", 1e-2);
  po.nonlinear.use_newton = o.get_bool("newton", true);
  po.nonlinear.fallback_to_picard = o.get_bool("picard_fallback", true);

  StokesSolverOptions& so = po.nonlinear.linear;
  so.kernel.type = parse_fine_operator(o.get_string("backend", "tens"));
  so.kernel.batch_width = o.get_int("op_batch_width", 0);
  PT_ASSERT_MSG(so.kernel.batch_width == 0 ||
                    is_batch_width(so.kernel.batch_width),
                "-op_batch_width must be 0, 4, or 8");
  so.kernel.order = o.get_int("order", 2);
  PT_ASSERT_MSG(so.kernel.order >= 2 && so.kernel.order <= 4,
                "-order must be 2, 3, or 4");
  // Reject unsupported (backend, order, width) combinations right here, with
  // the registry's nearest-key diagnosis (e.g. asmb only exists at k = 2).
  ensure_qk_kernels_registered();
  if (!KernelRegistry::instance().is_registered(so.kernel)) {
    PT_THROW("no kernel registered for " +
             KernelKey::of(so.kernel).str() + "; " +
             KernelRegistry::instance().nearest_keys_message(so.kernel));
  }
  const Index mres = o.get_index("mx", o.get_index("m", 8));
  so.gmg.levels = o.get_int("levels", suggest_gmg_levels(mres));
  so.coarse_solve = parse_coarse(o.get_string("coarse", "amg"));
  so.amg.coarse_size = o.get_index("amg_coarse_size", 400);
  // Coarse-grid pipeline knobs (docs/KERNELS.md): every one of these is
  // bitwise-neutral — identical Krylov histories and -final_state digests
  // either way — so they exist for parity tests and perf A/B runs.
  so.gmg.rap_cache = o.get_bool("mg_rap_cache", true);
  so.gmg.blocked_spmv = o.get_bool("mg_blocked_spmv", true);
  so.amg.blocked_spmv = so.gmg.blocked_spmv;
  const bool fused = o.get_bool("mg_fused_smoother", true);
  so.gmg.chebyshev.fused = fused;
  so.amg.chebyshev.fused = fused;
  so.krylov.rtol = o.get_real("krylov_rtol", 1e-5);
  so.krylov.max_it = o.get_int("krylov_maxit", 500);
  so.krylov.dtol = o.get_real("dtol", 1e5);
  so.krylov.sentinel_every = o.get_int("sentinel_every", 0);
  so.krylov.sentinel_tol = o.get_real("sentinel_tol", 1e-6);
  PT_ASSERT_MSG(so.krylov.sentinel_every >= 0,
                "-sentinel_every must be >= 0");
  PT_ASSERT_MSG(so.krylov.sentinel_tol > 0, "-sentinel_tol must be > 0");

  if (o.has("decomp")) {
    const auto shapes = parse_decomp_shapes(o.get_string("decomp", "1,1,1"));
    PT_ASSERT_MSG(shapes.size() == 1,
                  "-decomp expects a single px,py,pz shape here (sweeps are "
                  "a bench/table2_scaling feature)");
    po.decomp = shapes[0];
  }

  transport::TransportOptions& to = po.transport;
  to.kind = transport::parse_transport_kind(
      o.get_string("transport", "memory"));
  to.heartbeat_ms = o.get_int("heartbeat_ms", to.heartbeat_ms);
  to.worker_timeout_ms = o.get_int("worker_timeout_ms", to.worker_timeout_ms);
  to.max_worker_restarts =
      o.get_int("max_worker_restarts", to.max_worker_restarts);
  to.backoff_base_ms = o.get_int("backoff_base_ms", to.backoff_base_ms);
  PT_ASSERT_MSG(to.heartbeat_ms >= 1, "-heartbeat_ms must be >= 1");
  PT_ASSERT_MSG(to.worker_timeout_ms >= to.heartbeat_ms,
                "-worker_timeout_ms must be >= -heartbeat_ms");
  PT_ASSERT_MSG(to.max_worker_restarts >= 0,
                "-max_worker_restarts must be >= 0");
  PT_ASSERT_MSG(to.backoff_base_ms >= 1, "-backoff_base_ms must be >= 1");

  cfg.use_safeguard_ = o.get_bool("safeguard", true);
  SafeguardOptions& sg = cfg.safeguard_;
  sg.max_retries = o.get_int("max_retries", 3);
  sg.dt_cut_factor = o.get_real("dt_cut_factor", 0.5);
  sg.dt_grow_factor = o.get_real("dt_grow", 1.5);
  sg.health_every = o.get_int("health_every", 0);
  sg.health.population = po.population;
  sg.checkpoint_dir = o.get_string("checkpoint_dir", "");
  sg.checkpoint_every = o.get_int("checkpoint_every", 0);
  sg.checkpoint_keep = o.get_int("checkpoint_keep", 3);
  sg.seal_state = o.get_bool("seal_state", true);
  sg.scrub_every = o.get_int("scrub_every", 0);
  PT_ASSERT_MSG(sg.scrub_every >= 0, "-scrub_every must be >= 0");
  // A scrubbing run needs the operator seals registered, and only a
  // scrubbing run pays their CRC arming cost.
  so.gmg.seal_operators = sg.scrub_every > 0;
  so.amg.seal_operators = sg.scrub_every > 0;
  return cfg;
}

SolverConfig SolverConfig::from_json(const obs::JsonValue& obj) {
  describe_options();
  const Options o = options_from_json(obj);
  if (const auto unknown = o.unknown_keys(); !unknown.empty()) {
    std::string msg = Options::format_unknown(unknown);
    while (!msg.empty() && msg.back() == '\n') msg.pop_back();
    PT_THROW("job spec: " + msg);
  }
  return from_options(o);
}

std::unique_ptr<SubdomainEngine> SolverConfig::make_engine(
    const StructuredMesh& mesh) const {
  const auto& d = ptatin_.decomp;
  if (d[0] * d[1] * d[2] <= 1) return nullptr;
  return std::make_unique<SubdomainEngine>(mesh, d[0], d[1], d[2]);
}

std::unique_ptr<StokesSolver> SolverConfig::make_stokes_solver(
    const StructuredMesh& mesh, const QuadCoefficients& coeff,
    const DirichletBc& bc, const SubdomainEngine* engine) const {
  StokesSolverOptions so = ptatin_.nonlinear.linear;
  so.kernel.engine = engine;
  return std::make_unique<StokesSolver>(mesh, coeff, bc, so);
}

std::unique_ptr<PtatinContext> SolverConfig::make_context(
    ModelSetup setup) const {
  return std::make_unique<PtatinContext>(std::move(setup), ptatin_);
}

std::unique_ptr<SafeguardedStepper> SolverConfig::make_stepper(
    PtatinContext& ctx) const {
  return std::make_unique<SafeguardedStepper>(ctx, *this);
}

} // namespace ptatin
