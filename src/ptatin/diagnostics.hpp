// Post-processing diagnostics: the observables geodynamics studies report
// (surface topography, dissipation, RMS velocities, strain-rate fields).
#pragma once

#include <vector>

#include "fem/mesh.hpp"
#include "la/vector.hpp"
#include "stokes/coefficient.hpp"

namespace ptatin {

/// Surface topography: heights of the free-surface nodes along the vertical
/// axis, returned as a (n1 x n2) row-major grid of the lateral lattice.
struct TopographyField {
  Index n1 = 0, n2 = 0;
  std::vector<Real> height;
  Real min = 0, max = 0, mean = 0;

  Real at(Index i1, Index i2) const { return height[i1 + n1 * i2]; }
};

TopographyField extract_topography(const StructuredMesh& mesh,
                                   int vertical_axis);

/// Viscous dissipation Phi = int 2 eta D(u):D(u) dV — the energy release
/// rate of the flow (a standard convergence/benchmark observable).
Real viscous_dissipation(const StructuredMesh& mesh,
                         const QuadCoefficients& coeff, const Vector& u);

/// Volume-weighted RMS velocity sqrt(int |u|^2 dV / |Omega|).
Real rms_velocity(const StructuredMesh& mesh, const Vector& u);

/// Per-element mean of the strain-rate second invariant sqrt(j2)
/// (size num_elements; useful as VTK cell data to visualize shear zones).
std::vector<Real> strain_rate_invariant_field(const StructuredMesh& mesh,
                                              const Vector& u);

/// Per-element mean viscosity / density (VTK cell data helpers).
std::vector<Real> element_mean_viscosity(const QuadCoefficients& coeff);
std::vector<Real> element_mean_density(const QuadCoefficients& coeff);

/// Basic flow statistics bundle.
struct FlowStats {
  Real u_rms = 0;
  Real u_max = 0;
  Real dissipation = 0;
  Real divergence_l2 = 0;
};

FlowStats compute_flow_stats(const StructuredMesh& mesh,
                             const QuadCoefficients& coeff, const Vector& u);

} // namespace ptatin
