// Finite element bases: Q2 (velocity), Q1 (geometry / projection / energy),
// and the physical-frame discontinuous linear pressure P1disc.
//
// The Q2 basis is also exposed in 1D tensor-product form: the 3x3 matrices
// B̂ (basis evaluation) and D̂ (derivative evaluation) at the 1D Gauss points,
// from which the tensor-product kernels of §III-D build the 81x27 reference
// gradient action as (D̂⊗B̂⊗B̂, B̂⊗D̂⊗B̂, B̂⊗B̂⊗D̂) without ever forming it.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "fem/quadrature.hpp"

namespace ptatin {

// ---------------------------------------------------------------------------
// 1D quadratic Lagrange basis on nodes {-1, 0, +1}.
// ---------------------------------------------------------------------------

inline Real q2_basis_1d(int a, Real x) {
  switch (a) {
    case 0: return Real(0.5) * x * (x - 1);
    case 1: return (1 - x) * (1 + x);
    default: return Real(0.5) * x * (x + 1);
  }
}

inline Real q2_deriv_1d(int a, Real x) {
  switch (a) {
    case 0: return x - Real(0.5);
    case 1: return Real(-2) * x;
    default: return x + Real(0.5);
  }
}

// 1D linear Lagrange basis on nodes {-1, +1}.
inline Real q1_basis_1d(int a, Real x) {
  return a == 0 ? Real(0.5) * (1 - x) : Real(0.5) * (1 + x);
}

inline Real q1_deriv_1d(int a, Real) { return a == 0 ? Real(-0.5) : Real(0.5); }

// ---------------------------------------------------------------------------
// 3D bases evaluated at an arbitrary reference point.
// Local node ordering: a + 3b + 9c (x fastest), matching mesh element maps.
// ---------------------------------------------------------------------------

/// N[27]: Q2 shape functions at xi.
void q2_eval(const Real xi[3], Real N[kQ2NodesPerEl]);

/// dN[27][3]: Q2 reference-space gradients at xi.
void q2_eval_deriv(const Real xi[3], Real dN[kQ2NodesPerEl][3]);

/// N[8]: Q1 shape functions at xi (node ordering a + 2b + 4c).
void q1_eval(const Real xi[3], Real N[kQ1NodesPerEl]);

/// dN[8][3]: Q1 reference-space gradients at xi.
void q1_eval_deriv(const Real xi[3], Real dN[kQ1NodesPerEl][3]);

// ---------------------------------------------------------------------------
// Tabulated values at the 3x3x3 Gauss points (shared by all element kernels).
// ---------------------------------------------------------------------------

struct Q2Tabulation {
  /// N[q][i]: basis i at quadrature point q.
  Real N[kQuadPerEl][kQ2NodesPerEl];
  /// dN[q][i][d]: reference derivative of basis i in direction d at point q.
  Real dN[kQuadPerEl][kQ2NodesPerEl][3];
  /// Quadrature weights.
  Real w[kQuadPerEl];

  /// 1D tensor factors at the 3 Gauss points: B[q1d][a], D[q1d][a].
  Real B1[3][3];
  Real D1[3][3];
};

/// The process-wide Q2 tabulation (computed once, immutable).
const Q2Tabulation& q2_tabulation();

struct Q1Tabulation {
  Real N[QuadQ1::kPoints][kQ1NodesPerEl];
  Real dN[QuadQ1::kPoints][kQ1NodesPerEl][3];
  Real w[QuadQ1::kPoints];
};

const Q1Tabulation& q1_tabulation();

/// Q1 geometry tabulated at the Q2 27-point rule (for the coordinate mapping
/// inside Q2 element kernels: 8 corner coordinates per element, §III-D).
struct GeomTabulation {
  Real N[kQuadPerEl][kQ1NodesPerEl];
  Real dN[kQuadPerEl][kQ1NodesPerEl][3];
};

const GeomTabulation& geom_tabulation();

// ---------------------------------------------------------------------------
// Arbitrary-order Qk Lagrange basis on the uniform 1D node lattice
// x_a = -1 + 2a/k, a = 0..k (k = 2 reproduces the Q2 nodes {-1, 0, +1}).
// Used by the kernel registry's higher-order tensor applies (k = 3, 4) and
// the runtime generic-order fallback; node ordering a + p*b + p^2*c with
// p = k+1 (x fastest), matching the Q2 convention.
// ---------------------------------------------------------------------------

/// 1D Lagrange basis function a of order k at x.
Real qk_basis_1d(int k, int a, Real x);

/// Derivative of qk_basis_1d.
Real qk_deriv_1d(int k, int a, Real x);

/// N[(k+1)^3]: Qk shape functions at xi.
void qk_eval(int k, const Real xi[3], Real* N);

/// dN[(k+1)^3][3] (flat, i*3+d): Qk reference-space gradients at xi.
void qk_eval_deriv(int k, const Real xi[3], Real* dN);

/// Everything a Qk element kernel needs at the tensorized (k+1)-point Gauss
/// rule: 1D factors for sum factorization, dense 3D tables for the generic
/// fallback, Q1 geometry factors at the Qk points, and the 1D interpolation
/// matrix lifting coefficient samples from the Gauss3 grid (where
/// QuadCoefficients stores them) onto the Qk quadrature grid.
struct QkTabulation {
  int k = 0; ///< polynomial order
  int p = 0; ///< points (and nodes) per direction, k+1

  std::vector<Real> pts1;    ///< [p] 1D Gauss points
  std::vector<Real> B1;      ///< [p*p], B1[q*p + a]: 1D basis a at point q
  std::vector<Real> D1;      ///< [p*p], 1D derivative
  std::vector<Real> w1;      ///< [p] 1D weights
  std::vector<Real> w;       ///< [p^3] tensorized weights (x fastest)
  std::vector<Real> N;       ///< [p^3 * p^3], N[q*nn + i]
  std::vector<Real> dN;      ///< [p^3 * p^3 * 3], dN[(q*nn + i)*3 + d]
  std::vector<Real> geomN;   ///< [p^3 * 8], Q1 shape at the Qk points
  std::vector<Real> geomdN;  ///< [p^3 * 8 * 3]
  std::vector<Real> interp1; ///< [p*3], Gauss3 -> Gauss-p 1D interpolation

  int nodes_per_el() const { return p * p * p; }
  int quad_per_el() const { return p * p * p; }
};

/// The process-wide Qk tabulation for k in [2, 4] (computed once, immutable).
const QkTabulation& qk_tabulation(int k);

// ---------------------------------------------------------------------------
// P1disc pressure basis, defined in PHYSICAL coordinates (x, y, z).
//
// §II-B: "To preserve the order of accuracy of the Q2-P1disc discretization,
// we define the pressure basis in the x,y,z coordinate system, as opposed to
// in the 'mapped' coordinate system." Basis: {1, (x-xb)/hx, (y-yb)/hy,
// (z-zb)/hz} with xb the element barycenter and h the element extents
// (the scaling keeps element mass matrices well conditioned).
// ---------------------------------------------------------------------------

struct P1Frame {
  Real center[3];
  Real scale[3]; ///< inverse half-extents
};

/// psi[4]: pressure basis at physical point x given the element frame.
inline void p1disc_eval(const P1Frame& f, const Real x[3],
                        Real psi[kP1NodesPerEl]) {
  psi[0] = 1.0;
  psi[1] = (x[0] - f.center[0]) * f.scale[0];
  psi[2] = (x[1] - f.center[1]) * f.scale[1];
  psi[3] = (x[2] - f.center[2]) * f.scale[2];
}

} // namespace ptatin
