#include "mpm/points.hpp"

#include "common/parallel.hpp"
#include "fem/point_location.hpp"

namespace ptatin {

void MaterialPoints::reserve(Index n) {
  x_.reserve(3 * n);
  xi_.reserve(3 * n);
  el_.reserve(n);
  lith_.reserve(n);
  eps_p_.reserve(n);
}

Index MaterialPoints::add(const Vec3& x, int lithology, Real plastic_strain) {
  x_.insert(x_.end(), {x[0], x[1], x[2]});
  xi_.insert(xi_.end(), {0.0, 0.0, 0.0});
  el_.push_back(-1);
  lith_.push_back(lithology);
  eps_p_.push_back(plastic_strain);
  return size() - 1;
}

void MaterialPoints::remove(Index i) {
  PT_DEBUG_ASSERT(i >= 0 && i < size());
  const Index last = size() - 1;
  if (i != last) {
    for (int d = 0; d < 3; ++d) {
      x_[3 * i + d] = x_[3 * last + d];
      xi_[3 * i + d] = xi_[3 * last + d];
    }
    el_[i] = el_[last];
    lith_[i] = lith_[last];
    eps_p_[i] = eps_p_[last];
  }
  x_.resize(3 * last);
  xi_.resize(3 * last);
  el_.pop_back();
  lith_.pop_back();
  eps_p_.pop_back();
}

void MaterialPoints::clear() {
  x_.clear();
  xi_.clear();
  el_.clear();
  lith_.clear();
  eps_p_.clear();
}

void layout_points(const StructuredMesh& mesh, int per_dim,
                   const std::function<int(const Vec3&)>& lithology_of,
                   MaterialPoints& points, Real jitter, std::uint64_t seed) {
  PT_ASSERT(per_dim >= 1);
  Rng rng(seed);
  points.reserve(points.size() +
                 mesh.num_elements() * per_dim * per_dim * per_dim);
  const Real cell = Real(2) / per_dim;
  for (Index e = 0; e < mesh.num_elements(); ++e) {
    for (int c = 0; c < per_dim; ++c)
      for (int b = 0; b < per_dim; ++b)
        for (int a = 0; a < per_dim; ++a) {
          Vec3 xi{-1 + (a + Real(0.5)) * cell, -1 + (b + Real(0.5)) * cell,
                  -1 + (c + Real(0.5)) * cell};
          if (jitter > 0) {
            for (int d = 0; d < 3; ++d)
              xi[d] += rng.uniform(-jitter, jitter) * cell * Real(0.5);
          }
          const Vec3 x = mesh.map_to_physical(e, xi);
          const Index i = points.add(x, lithology_of(x));
          points.set_location(i, e, xi);
        }
  }
}

Index locate_all(const StructuredMesh& mesh, MaterialPoints& points) {
  const Index n = points.size();
  std::vector<std::uint8_t> lost(n, 0);
  parallel_for(n, [&](Index i) {
    const PointLocation loc =
        locate_point(mesh, points.position(i), points.element(i));
    if (loc.found) {
      points.set_location(i, loc.element, loc.xi);
    } else {
      points.invalidate_location(i);
      lost[i] = 1;
    }
  });
  Index nlost = 0;
  for (Index i = 0; i < n; ++i) nlost += lost[i];
  return nlost;
}

} // namespace ptatin
