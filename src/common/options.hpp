// PETSc-style options database: "-key value" command-line pairs with typed
// accessors and defaults. Examples and benches use this to retune solvers
// without recompiling, mirroring how pTatin3D is driven through PETSc options.
//
// Keys are normalized: "-key", "--key", and "key" all resolve to the same
// entry, both when parsing argv and in every accessor, so call sites never
// have to care which spelling the user typed.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ptatin {

class Options {
public:
  Options() = default;

  /// Parse "-key value" and bare "-flag" arguments (argv[0] is skipped).
  /// "--key" is accepted as a synonym for "-key".
  static Options from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& dflt) const;
  Index get_index(const std::string& key, Index dflt) const;
  int get_int(const std::string& key, int dflt) const;
  Real get_real(const std::string& key, Real dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// Comma-separated list value ("4,8,16"); absent key = empty vector. For
  /// convenience 'x' is also accepted as a separator ("2x2x2"), so shapes
  /// and grid sweeps share one list syntax.
  std::vector<std::string> get_list(const std::string& key) const;
  std::vector<Index> get_index_list(const std::string& key) const;
  std::vector<Real> get_real_list(const std::string& key) const;

  const std::map<std::string, std::string>& entries() const { return kv_; }

  // --- unknown-key validation ----------------------------------------------
  /// One parsed key that is not in the describe() registry, with up to three
  /// near-miss suggestions (smallest edit distance first).
  struct UnknownKey {
    std::string key;
    std::vector<std::string> suggestions;
  };

  /// Keys in this database that no Options::describe call registered. The
  /// driver and the serve job-spec parser treat a non-empty result as a typed
  /// usage error (exit code 2) instead of silently ignoring the flags.
  std::vector<UnknownKey> unknown_keys() const;

  /// Near-miss suggestions for `key` from the describe() registry: registered
  /// keys within a small edit distance or sharing a prefix, closest first.
  static std::vector<std::string> suggest(const std::string& key,
                                          std::size_t max_suggestions = 3);

  /// Render unknown keys as a one-per-line usage error message:
  /// "unknown option -foo (did you mean -food, -fool?)".
  static std::string format_unknown(const std::vector<UnknownKey>& unknown);

  // --- self-describing help ------------------------------------------------
  /// Register an option description for the generated -help text. Repeated
  /// registration of the same key overwrites (last wins). `value_hint` shows
  /// next to the flag ("N", "px,py,pz", ...); empty = bare flag.
  static void describe(const std::string& key, const std::string& value_hint,
                       const std::string& help);

  /// The generated help text: one "-key HINT  help" line per described
  /// option, sorted by key, wrapped to a fixed flag column.
  static std::string help_text();

private:
  /// "-key" / "--key" -> "key".
  static std::string normalize(const std::string& key);

  std::map<std::string, std::string> kv_;
};

} // namespace ptatin
