// Per-element isoparametric geometry evaluation shared by all kernels.
//
// §III-D: "To compute the physical gradient matrices on isoparametrically
// mapped elements, one computes the coordinate gradient ... Inverting these
// and then taking determinants produces the gradients ∇ξ and quadrature
// weighting for physical elements." Geometry is trilinear (8 corners).
#pragma once

#include "common/aligned.hpp"
#include "common/small_mat.hpp"
#include "common/types.hpp"
#include "fem/basis.hpp"
#include "fem/mesh.hpp"

namespace ptatin {

/// Metric terms of one element at all 27 quadrature points.
struct ElementGeometry {
  /// gamma[q] = (d xi / d x) at quadrature point q, row-major 3x3.
  Mat3 gamma[kQuadPerEl];
  /// wdetj[q] = quadrature weight * |det(dx/dxi)|.
  Real wdetj[kQuadPerEl];
  /// Physical coordinates of the quadrature points.
  Real xq[kQuadPerEl][3];
};

/// Compute geometry from the element's 8 corner coordinates.
void compute_element_geometry(const Real xe[kQ1NodesPerEl][3],
                              ElementGeometry& g);

/// Element frame for the physical-coordinate P1disc pressure basis (§II-B):
/// barycenter and inverse half-extents from the corner bounding box.
P1Frame compute_p1_frame(const Real xe[kQ1NodesPerEl][3]);

/// Convenience: gather corners and compute geometry for element e.
void element_geometry(const StructuredMesh& mesh, Index e, ElementGeometry& g);

/// Metric terms of W elements in SoA lane layout (lane = element in batch).
/// Each lane holds exactly the values ElementGeometry would: the batched
/// evaluation performs the scalar arithmetic per lane, so lanes are bitwise
/// identical to per-element results. xq is omitted (the batched operator
/// kernels never read it).
template <int W>
struct ElementGeometryBatch {
  alignas(kSimdAlign) Real gamma[kQuadPerEl][9][W];
  alignas(kSimdAlign) Real wdetj[kQuadPerEl][W];
};

/// Gather corners of elems[0..W) and compute their geometry lane-parallel.
template <int W>
void element_geometry_batch(const StructuredMesh& mesh, const Index* elems,
                            ElementGeometryBatch<W>& g);

P1Frame element_p1_frame(const StructuredMesh& mesh, Index e);

} // namespace ptatin
