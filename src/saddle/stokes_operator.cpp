#include "saddle/stokes_operator.hpp"

#include "common/parallel.hpp"
#include "obs/perf.hpp"

namespace ptatin {

StokesOperator::StokesOperator(const StructuredMesh& mesh,
                               ViscousOperatorBase& a, const DirichletBc& bc)
    : mesh_(mesh), a_(a), bc_(bc) {
  nu_ = num_velocity_dofs(mesh);
  np_ = num_pressure_dofs(mesh);
  PT_ASSERT(a.rows() == nu_);

  b_full_ = assemble_gradient_block(mesh);
  b_masked_ = b_full_;
  bc_.zero_rows(b_masked_);
  bt_masked_ = b_masked_.transpose();
}

void StokesOperator::extract_u(const Vector& x, Vector& u) const {
  if (u.size() != nu_) u.resize(nu_);
  const Real* xp = x.data();
  Real* up = u.data();
  parallel_for(nu_, [&](Index i) { up[i] = xp[i]; });
}

void StokesOperator::extract_p(const Vector& x, Vector& p) const {
  if (p.size() != np_) p.resize(np_);
  const Real* xp = x.data();
  Real* pp = p.data();
  parallel_for(np_, [&](Index i) { pp[i] = xp[nu_ + i]; });
}

void StokesOperator::combine(const Vector& u, const Vector& p,
                             Vector& x) const {
  PT_ASSERT(u.size() == nu_ && p.size() == np_);
  if (x.size() != rows()) x.resize(rows());
  Real* xp = x.data();
  const Real* up = u.data();
  const Real* pp = p.data();
  parallel_for(nu_, [&](Index i) { xp[i] = up[i]; });
  parallel_for(np_, [&](Index i) { xp[nu_ + i] = pp[i]; });
}

void StokesOperator::apply(const Vector& x, Vector& y) const {
  PerfScope perf("MatMult(Stokes)");
  PT_ASSERT(x.size() == rows());
  if (y.size() != rows()) y.resize(rows());

  extract_u(x, xu_);
  extract_p(x, xp_);

  // yu = A xu (masked) + B xp (rows at constrained dofs are zero in B).
  a_.apply(xu_, yu_);
  b_masked_.mult(xp_, yp_); // yp_ reused as a velocity-sized temporary
  PT_ASSERT(yp_.size() == nu_);
  yu_.axpy(1.0, yp_);

  // yp = B^T xu (columns at constrained dofs removed).
  bt_masked_.mult(xu_, yp_);

  combine(yu_, yp_, y);
}

Vector StokesOperator::build_rhs(const Vector& f) const {
  PT_ASSERT(f.size() == nu_);
  const Vector g = bc_.lifting();

  // Lift with the Picard form of the operator: rhs_u = f - A g. The
  // assembled back-end masks its matrix, so use a throwaway matrix-free
  // apply on the same coefficients.
  Vector ag(nu_);
  {
    TensorViscousOperator lift_op(mesh_, a_.coefficients(), nullptr);
    Vector gg;
    gg.copy_from(g);
    lift_op.apply(gg, ag);
  }
  Vector ru;
  ru.copy_from(f);
  ru.axpy(-1.0, ag);
  // Constrained rows: identity equation u_bc = g_bc.
  bc_.set_values(ru);

  // rp = -B^T g (the full B: boundary velocities do contribute mass flux).
  Vector rp;
  b_full_.mult_transpose(g, rp);
  rp.scale(-1.0);

  Vector rhs;
  combine(ru, rp, rhs);
  return rhs;
}

void StokesOperator::split_norms(const Vector& r, Real& unorm,
                                 Real& pnorm) const {
  PT_ASSERT(r.size() == rows());
  const Real* rp = r.data();
  unorm = std::sqrt(
      parallel_reduce_sum(nu_, [&](Index i) { return rp[i] * rp[i]; }));
  pnorm = std::sqrt(parallel_reduce_sum(
      np_, [&](Index i) { return rp[nu_ + i] * rp[nu_ + i]; }));
}

} // namespace ptatin
