// Schur complement reduction (SCR, §III-B).
//
// The alternative to full-space iteration: eliminate the velocity and solve
//   S dp = J_pu J_uu^{-1} F_u - F_p,   S = -J_pu J_uu^{-1} J_up
// with an outer Krylov method on the pressure space, every application of S
// performing an accurate inner J_uu solve; then recover
//   du = J_uu^{-1} (F_u - J_up dp).
// "These methods tend to be reliable, but ... tend to be expensive"; §IV-A
// attributes the robustness gap of the triangular preconditioner at extreme
// contrasts to non-normality that SCR avoids.
#pragma once

#include "ksp/settings.hpp"
#include "saddle/stokes_operator.hpp"
#include "stokes/blocks.hpp"

namespace ptatin {

struct ScrOptions {
  KrylovSettings outer;       ///< pressure-space solve (FGMRES)
  KrylovSettings inner;       ///< velocity solves (GCR + velocity PC)
  ScrOptions() {
    outer.rtol = 1e-5;
    outer.max_it = 200;
    inner.rtol = 1e-8; // accurate inner solves are the point of SCR
    inner.max_it = 200;
  }
};

struct ScrStats {
  SolveStats outer;
  long inner_solves = 0;
  long inner_iterations = 0;
  /// First fatal divergence reason seen by an inner velocity solve
  /// (kIterating when all inner solves were healthy). The outer solve
  /// usually diverges too once an inner solve is poisoned; this field tells
  /// the caller *why* — the inner breakdown, not the outer symptom.
  ConvergedReason inner_failure = ConvergedReason::kIterating;
};

/// Solve the coupled system given a velocity preconditioner and the pressure
/// Schur approximation (used to precondition the outer solve). `rhs` is the
/// stacked [F_u; F_p]; `x` returns [u; p].
ScrStats scr_solve(const StokesOperator& op, const Preconditioner& velocity_pc,
                   const PressureMassSchur& schur, const Vector& rhs, Vector& x,
                   const ScrOptions& opts);

/// The Uzawa method (§III-B: "a well-known stationary iteration in the SCR
/// family"): Richardson iteration on the Schur complement,
///   u_k = J_uu^{-1} (F_u - J_up p_k)
///   p_{k+1} = p_k + omega * Mp^{-1} (J_pu u_k - F_p),
/// each step costing one accurate velocity solve.
struct UzawaOptions {
  Real omega = 1.0;
  int max_it = 200;
  Real rtol = 1e-5;        ///< on the divergence residual ||J_pu u - F_p||
  KrylovSettings inner;    ///< velocity solves
  UzawaOptions() {
    inner.rtol = 1e-8;
    inner.max_it = 300;
  }
};

struct UzawaStats {
  bool converged = false;
  int iterations = 0;
  long inner_iterations = 0;
  std::vector<Real> history; ///< divergence residual per iteration
};

UzawaStats uzawa_solve(const StokesOperator& op,
                       const Preconditioner& velocity_pc,
                       const PressureMassSchur& schur, const Vector& rhs,
                       Vector& x, const UzawaOptions& opts);

} // namespace ptatin
