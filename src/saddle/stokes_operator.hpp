// The coupled Stokes saddle-point operator (Eq. 14):
//
//   [ J_uu  J_up ] [du]   [ F_u ]
//   [ J_pu   0   ] [dp] = [ F_p ]
//
// J_uu is any of the viscous back-ends (optionally with the Newton term:
// "we use the true Newton linearization only when applying the Krylov
// operator ... For the preconditioner ... we use the Picard linearization",
// §III-A). J_up = B is always assembled (it has only 4 columns per element);
// J_pu = B^T. Dirichlet constraints are imposed by masking; inhomogeneous
// values enter through build_rhs (lifting).
#pragma once

#include <memory>

#include "fem/bc.hpp"
#include "ksp/operator.hpp"
#include "la/csr.hpp"
#include "stokes/blocks.hpp"
#include "stokes/viscous_ops.hpp"

namespace ptatin {

class StokesOperator : public LinearOperator {
public:
  /// `a` is borrowed (must outlive this). B blocks are assembled here.
  StokesOperator(const StructuredMesh& mesh, ViscousOperatorBase& a,
                 const DirichletBc& bc);

  Index rows() const override { return nu_ + np_; }
  Index cols() const override { return nu_ + np_; }
  Index num_velocity() const { return nu_; }
  Index num_pressure() const { return np_; }

  void apply(const Vector& x, Vector& y) const override;

  /// Coupled right-hand side with boundary lifting: given the body-force
  /// vector f (velocity space), returns [f - A g ; -B^T g] with constrained
  /// rows replaced by the boundary values.
  Vector build_rhs(const Vector& f) const;

  /// Residual norms split by field (for the Figure 2 monitors).
  void split_norms(const Vector& r, Real& unorm, Real& pnorm) const;

  // --- views ---------------------------------------------------------------
  ViscousOperatorBase& viscous() { return a_; }
  const ViscousOperatorBase& viscous() const { return a_; }
  const CsrMatrix& gradient() const { return b_masked_; }
  const CsrMatrix& divergence() const { return bt_masked_; }
  const DirichletBc& bc() const { return bc_; }
  const StructuredMesh& mesh() const { return mesh_; }

  /// Split / combine helpers for the stacked layout [u; p].
  void extract_u(const Vector& x, Vector& u) const;
  void extract_p(const Vector& x, Vector& p) const;
  void combine(const Vector& u, const Vector& p, Vector& x) const;

private:
  const StructuredMesh& mesh_;
  ViscousOperatorBase& a_;
  const DirichletBc& bc_;
  Index nu_ = 0, np_ = 0;
  CsrMatrix b_full_;   ///< gradient block before BC masking (for lifting)
  CsrMatrix b_masked_; ///< rows at constrained velocity dofs zeroed
  CsrMatrix bt_masked_;
  mutable Vector xu_, xp_, yu_, yp_;
};

} // namespace ptatin
