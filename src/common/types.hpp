// Core scalar and index types used throughout the pTatin3D reproduction.
//
// The paper (§IV-A) reports all results with 64-bit indices; we follow suit so
// that global degree-of-freedom counts on large meshes cannot overflow.
#pragma once

#include <cstdint>
#include <cstddef>

namespace ptatin {

/// Floating-point scalar used for all field data and linear algebra.
using Real = double;

/// Global index type (64-bit, matching the paper's configuration).
using Index = std::int64_t;

/// Small local index (element-local node/quadrature numbering).
using LocalIndex = std::int32_t;

/// Number of spatial dimensions. pTatin3D is a 3D code.
inline constexpr int kDim = 3;

/// Q2 velocity element: 3^3 nodes per element.
inline constexpr int kQ2NodesPerEl = 27;

/// Q1 element (coordinates / projection / energy): 2^3 nodes.
inline constexpr int kQ1NodesPerEl = 8;

/// Discontinuous linear pressure P1disc: {1, x, y, z} per element.
inline constexpr int kP1NodesPerEl = 4;

/// 3x3x3 Gauss quadrature used for all Q2 integrals.
inline constexpr int kQuadPerEl = 27;

} // namespace ptatin
