// Compatibility forward: the perf registry moved into the telemetry
// subsystem (src/obs). PerfEvent / PerfRegistry / PerfScope keep their names
// and namespace; include "obs/perf.hpp" directly in new code.
#pragma once

#include "obs/perf.hpp"
