// Fixed-size 3x3 matrix helpers for isoparametric coordinate mappings.
//
// Every quadrature point of every element needs a 3x3 Jacobian inverse and
// determinant (§III-D: "Inverting these and then taking determinants produces
// the gradients ∇ξ and quadrature weighting"). These are fully inlined.
#pragma once

#include <array>
#include <cmath>

#include "common/types.hpp"

namespace ptatin {

/// Row-major 3x3 matrix.
using Mat3 = std::array<Real, 9>;
using Vec3 = std::array<Real, 3>;

inline Real det3(const Mat3& m) {
  return m[0] * (m[4] * m[8] - m[5] * m[7]) -
         m[1] * (m[3] * m[8] - m[5] * m[6]) +
         m[2] * (m[3] * m[7] - m[4] * m[6]);
}

/// Inverse of a 3x3 matrix given its (nonzero) determinant.
inline Mat3 inv3(const Mat3& m, Real det) {
  const Real id = Real(1) / det;
  return Mat3{(m[4] * m[8] - m[5] * m[7]) * id, (m[2] * m[7] - m[1] * m[8]) * id,
              (m[1] * m[5] - m[2] * m[4]) * id, (m[5] * m[6] - m[3] * m[8]) * id,
              (m[0] * m[8] - m[2] * m[6]) * id, (m[2] * m[3] - m[0] * m[5]) * id,
              (m[3] * m[7] - m[4] * m[6]) * id, (m[1] * m[6] - m[0] * m[7]) * id,
              (m[0] * m[4] - m[1] * m[3]) * id};
}

inline Vec3 matvec3(const Mat3& m, const Vec3& v) {
  return Vec3{m[0] * v[0] + m[1] * v[1] + m[2] * v[2],
              m[3] * v[0] + m[4] * v[1] + m[5] * v[2],
              m[6] * v[0] + m[7] * v[1] + m[8] * v[2]};
}

inline Vec3 sub3(const Vec3& a, const Vec3& b) {
  return Vec3{a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

inline Real norm3(const Vec3& v) {
  return std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
}

} // namespace ptatin
