#include "ptatin/models_sinker.hpp"

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "stokes/geometry.hpp"

namespace ptatin {

std::vector<Vec3> sinker_sphere_centers(const SinkerParams& p) {
  Rng rng(p.seed);
  std::vector<Vec3> centers;
  const Real margin = p.radius * 1.05;
  int attempts = 0;
  while (static_cast<Index>(centers.size()) < p.num_spheres &&
         attempts < 100000) {
    ++attempts;
    const Vec3 c{rng.uniform(margin, 1 - margin),
                 rng.uniform(margin, 1 - margin),
                 rng.uniform(margin, 1 - margin)};
    bool ok = true;
    for (const Vec3& o : centers) {
      const Real d2 = (c[0] - o[0]) * (c[0] - o[0]) +
                      (c[1] - o[1]) * (c[1] - o[1]) +
                      (c[2] - o[2]) * (c[2] - o[2]);
      if (d2 < 4 * p.radius * p.radius * Real(1.1)) {
        ok = false;
        break;
      }
    }
    if (ok) centers.push_back(c);
  }
  PT_ASSERT_MSG(static_cast<Index>(centers.size()) == p.num_spheres,
                "could not place nonintersecting spheres");
  return centers;
}

namespace {

bool inside_any_sphere(const std::vector<Vec3>& centers, Real r2,
                       const Vec3& x) {
  for (const Vec3& c : centers) {
    const Real d2 = (x[0] - c[0]) * (x[0] - c[0]) +
                    (x[1] - c[1]) * (x[1] - c[1]) +
                    (x[2] - c[2]) * (x[2] - c[2]);
    if (d2 < r2) return true;
  }
  return false;
}

} // namespace

ModelSetup make_sinker_model(const SinkerParams& p) {
  ModelSetup m;
  m.name = "sinker";
  m.mesh = StructuredMesh::box(p.mx, p.my, p.mz, {0, 0, 0}, {1, 1, 1});
  m.bc = sinker_boundary_conditions(m.mesh);
  m.bc_factory = [](const StructuredMesh& mesh) {
    return sinker_boundary_conditions(mesh);
  };
  m.gravity = {0, 0, -9.8};
  m.vertical_axis = 2;

  // Lithology 0: ambient, 1: sphere material.
  const int ambient = m.materials.add(std::make_shared<ConstantViscosityLaw>(
      Real(1) / p.contrast, /*rho0=*/1.0));
  (void)ambient;
  m.materials.add(
      std::make_shared<ConstantViscosityLaw>(1.0, p.sphere_density));

  auto centers = sinker_sphere_centers(p);
  const Real r2 = p.radius * p.radius;
  m.lithology_of = [centers, r2](const Vec3& x) {
    return inside_any_sphere(centers, r2, x) ? 1 : 0;
  };
  return m;
}

QuadCoefficients sinker_coefficients(const StructuredMesh& mesh,
                                     const SinkerParams& p) {
  QuadCoefficients c(mesh.num_elements());
  auto centers = sinker_sphere_centers(p);
  const Real r2 = p.radius * p.radius;
  for (Index e = 0; e < mesh.num_elements(); ++e) {
    ElementGeometry g;
    element_geometry(mesh, e, g);
    for (int q = 0; q < kQuadPerEl; ++q) {
      const Vec3 x{g.xq[q][0], g.xq[q][1], g.xq[q][2]};
      const bool in = inside_any_sphere(centers, r2, x);
      c.eta(e, q) = in ? 1.0 : Real(1) / p.contrast;
      c.rho(e, q) = in ? p.sphere_density : 1.0;
    }
  }
  return c;
}

} // namespace ptatin
