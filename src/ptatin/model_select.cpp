#include "ptatin/model_select.hpp"

#include "common/error.hpp"
#include "ptatin/models_rifting.hpp"
#include "ptatin/models_sinker.hpp"
#include "ptatin/models_subduction.hpp"

namespace ptatin {

namespace {

SinkerParams sinker_params(const Options& o) {
  SinkerParams p;
  p.mx = p.my = p.mz = o.get_index("m", 8);
  p.num_spheres = o.get_index("spheres", 8);
  p.radius = o.get_real("radius", 0.1);
  p.contrast = o.get_real("contrast", 1e3);
  return p;
}

RiftingParams rifting_params(const Options& o) {
  RiftingParams p;
  p.mx = o.get_index("mx", 16);
  p.my = o.get_index("my", 8);
  p.mz = o.get_index("mz", 8);
  p.extension_rate = o.get_real("extension", 1.0);
  p.shortening_rate = o.get_real("shortening", 0.0);
  return p;
}

SubductionParams subduction_params(const Options& o) {
  SubductionParams p;
  p.mx = o.get_index("mx", 16);
  p.my = o.get_index("my", 4);
  p.mz = o.get_index("mz", 8);
  return p;
}

} // namespace

void describe_model_options() {
  Options::describe("model", "sinker|rifting|subduction", "model selection");
  Options::describe("m", "N", "sinker mesh resolution (cubic)");
  Options::describe("mx", "N", "mesh elements in x (rifting/subduction)");
  Options::describe("my", "N", "mesh elements in y");
  Options::describe("mz", "N", "mesh elements in z");
  Options::describe("spheres", "N", "sinker sphere count");
  Options::describe("radius", "X", "sinker sphere radius");
  Options::describe("contrast", "X", "sinker viscosity contrast");
  Options::describe("extension", "X", "rifting extension rate");
  Options::describe("shortening", "X", "rifting z-shortening rate");
}

ModelSetup build_model_from_options(const Options& o, int& vertical_axis) {
  const std::string model = o.get_string("model", "sinker");
  vertical_axis = 2;
  if (model == "rifting") {
    vertical_axis = 1;
    return make_rifting_model(rifting_params(o));
  }
  if (model == "subduction") return make_subduction_model(subduction_params(o));
  PT_ASSERT_MSG(model == "sinker",
                "unknown -model (expected sinker|rifting|subduction)");
  return make_sinker_model(sinker_params(o));
}

obs::JsonValue canonical_model_json(const Options& o) {
  const std::string model = o.get_string("model", "sinker");
  obs::JsonValue j = obs::JsonValue::object();
  j["model"] = obs::JsonValue(model);
  if (model == "rifting") {
    const RiftingParams p = rifting_params(o);
    j["mx"] = obs::JsonValue((long long)p.mx);
    j["my"] = obs::JsonValue((long long)p.my);
    j["mz"] = obs::JsonValue((long long)p.mz);
    j["extension"] = obs::JsonValue(p.extension_rate);
    j["shortening"] = obs::JsonValue(p.shortening_rate);
    return j;
  }
  if (model == "subduction") {
    const SubductionParams p = subduction_params(o);
    j["mx"] = obs::JsonValue((long long)p.mx);
    j["my"] = obs::JsonValue((long long)p.my);
    j["mz"] = obs::JsonValue((long long)p.mz);
    return j;
  }
  PT_ASSERT_MSG(model == "sinker",
                "unknown -model (expected sinker|rifting|subduction)");
  const SinkerParams p = sinker_params(o);
  j["m"] = obs::JsonValue((long long)p.mx);
  j["spheres"] = obs::JsonValue((long long)p.num_spheres);
  j["radius"] = obs::JsonValue(p.radius);
  j["contrast"] = obs::JsonValue(p.contrast);
  return j;
}

} // namespace ptatin
