#include "saddle/stokes_solver.hpp"

#include "amg/rbm.hpp"
#include "common/log.hpp"
#include "common/timing.hpp"
#include "fem/subdomain_engine.hpp"
#include "ksp/cg.hpp"
#include "ksp/gcr.hpp"
#include "ksp/gmres.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/report.hpp"

namespace ptatin {

StokesSolver::StokesSolver(const StructuredMesh& mesh,
                           const QuadCoefficients& coeff,
                           const DirichletBc& bc,
                           const StokesSolverOptions& opts)
    : mesh_(mesh), bc_(bc), opts_(opts) {
  Timer t;

  PT_ASSERT_MSG(opts.kernel.order == 2,
                "the full Stokes solver stack runs the Q2-P1disc pair only; "
                "orders 3..4 are standalone matrix-free applies (use "
                "make_viscous_backend / bench/table1_operator)");
  a_ = make_viscous_backend(opts.kernel, mesh, coeff, &bc);
  if (opts.newton_operator) a_->set_newton(true);
  op_ = std::make_unique<StokesOperator>(mesh, *a_, bc);
  schur_ = std::make_unique<PressureMassSchur>(mesh, coeff);

  if (opts.velocity_pc == VelocityPcType::kGmg) {
    // The preconditioner always smooths with the Picard operator (§III-A):
    // build the hierarchy from the same coefficients (no Newton term — the
    // hierarchy constructs its own element operators).
    BcFactory bc_factory = opts.bc_factory
                               ? opts.bc_factory
                               : BcFactory([](const StructuredMesh& m) {
                                   return sinker_boundary_conditions(m);
                                 });
    // Precompute the coarsest mesh for rigid-body modes; restrict the modes
    // to the unconstrained dofs (nonzero near-nullspace entries at Dirichlet
    // rows pollute the aggregate bases near boundaries).
    StructuredMesh coarsest = mesh;
    for (int l = 1; l < opts.gmg.levels; ++l) coarsest = coarsest.coarsen();
    const DirichletBc coarsest_bc = bc_factory(coarsest);
    const AmgOptions amg_opts = opts.amg;
    const GmgCoarseSolve cs = opts.coarse_solve;
    const Index nblocks = opts.coarse_bjacobi_blocks;
    double* coarse_setup = &coarse_setup_seconds_;

    CoarseSolverFactory coarse_factory =
        [coarsest, coarsest_bc, amg_opts, cs, nblocks,
         coarse_setup](const CsrMatrix& a) -> std::unique_ptr<Preconditioner> {
      Timer ct;
      std::unique_ptr<Preconditioner> pc;
      switch (cs) {
        case GmgCoarseSolve::kAmg: {
          std::vector<Vector> rbm = rigid_body_modes(coarsest);
          for (auto& mode : rbm) coarsest_bc.zero_constrained(mode);
          pc = std::make_unique<SaAmg>(a, rbm, amg_opts);
          break;
        }
        case GmgCoarseSolve::kBJacobiLu:
          pc = std::make_unique<BlockJacobiPc>(a, nblocks,
                                               SubdomainSolve::kLu);
          break;
        case GmgCoarseSolve::kAsmCg: {
          // §V-A: CG preconditioned with ASM(ILU0, overlap 4), stopped at 25
          // iterations or 1e-4 reduction. Wrapped as a (nonlinear) PC shell.
          auto asm_pc = std::make_shared<BlockJacobiPc>(
              a, nblocks, SubdomainSolve::kIlu0, /*overlap=*/4);
          auto op = std::make_shared<MatrixOperator>(&a);
          pc = std::make_unique<ShellPc>(
              [asm_pc, op](const Vector& r, Vector& z) {
                z.resize(r.size());
                z.set_all(0.0);
                KrylovSettings s;
                s.rtol = 1e-4;
                s.max_it = 25;
                s.record_history = false;
                SolveStats st = cg_solve(*op, *asm_pc, r, z, s);
                // A fatal inner reason (pAp <= 0, NaN) must not vanish into
                // the preconditioner: count it so the outer layers and
                // telemetry can see *why* the enclosing solve degraded.
                if (is_fatal(st.reason)) {
                  obs::MetricsRegistry::instance()
                      .counter("safeguard.coarse_solve_failures")
                      .inc();
                  log_warn("coarse CG solve failed: ", st.reason_message());
                }
              });
          break;
        }
      }
      *coarse_setup += ct.seconds();
      return pc;
    };

    GmgOptions gmg_opts = opts.gmg;
    gmg_opts.fine_kernel.batch_width = opts.kernel.batch_width;
    gmg_opts.fine_kernel.engine = opts.kernel.engine;
    gmg_ = std::make_unique<GmgHierarchy>(mesh, coeff, bc, gmg_opts,
                                          bc_factory, coarse_factory);
    vpc_ = gmg_.get();
  } else {
    // Standalone SA-AMG on the assembled fine matrix (SA-i / SAML configs).
    const AsmbViscousOperator* asmb =
        dynamic_cast<const AsmbViscousOperator*>(a_.get());
    std::unique_ptr<AsmbViscousOperator> owned;
    if (asmb == nullptr) {
      owned = std::make_unique<AsmbViscousOperator>(mesh, coeff, &bc);
      asmb = owned.get();
    }
    amg_ = std::make_unique<SaAmg>(asmb->matrix(), rigid_body_modes(mesh),
                                   opts.amg);
    vpc_ = amg_.get();
  }

  pc_ = std::make_unique<BlockTriangularPc>(*op_, *vpc_, *schur_,
                                            opts.block_pc);
  setup_seconds_ = t.seconds();
}

StokesSolveResult StokesSolver::solve(const Vector& f,
                                      const Vector* x0) const {
  Vector rhs = op_->build_rhs(f);
  return solve_stacked(rhs, x0);
}

StokesSolveResult StokesSolver::solve_stacked(const Vector& rhs,
                                              const Vector* x0) const {
  StokesSolveResult res;
  Vector x(op_->rows(), 0.0);
  if (x0 != nullptr) x.copy_from(*x0);

  KrylovSettings s = opts_.krylov;
  auto user_monitor = s.monitor;
  s.monitor = [&](int it, Real rnorm, const Vector* r) {
    if (r != nullptr) {
      Real un, pn;
      op_->split_norms(*r, un, pn);
      res.momentum_residuals.push_back(un);
      res.pressure_residuals.push_back(pn);
    }
    if (user_monitor) user_monitor(it, rnorm, r);
  };

  Timer t;
  {
    PerfScope span("StokesSolve");
    if (opts_.outer == OuterKrylov::kGcr) {
      res.stats = gcr_solve(*op_, *pc_, rhs, x, s);
    } else {
      res.stats = fgmres_solve(*op_, *pc_, rhs, x, s);
    }
  }
  res.solve_seconds = t.seconds();
  res.setup_seconds = setup_seconds_;

  // Post-solve scrub of the operator seal (docs/ROBUSTNESS.md): the GMG/AMG
  // hierarchy is solve-scoped — it dies with this StokesSolver, before the
  // stepper's periodic scrubber ever sweeps the registry — so a bit flipped
  // in the sealed operator data must be caught here, while the corrupted
  // solve it poisoned can still be discarded. The timestep tier classifies
  // the diverged_sdc reason as SDC and replays at the same dt; the rebuild
  // re-assembles the operators from intact inputs, which is the heal.
  {
    std::vector<std::string> bad;
    if (gmg_ != nullptr) bad = gmg_->verify_seal();
    else if (amg_ != nullptr) bad = amg_->verify_seal();
    if (!bad.empty()) {
      std::string names;
      for (const std::string& b : bad) {
        if (!names.empty()) names += ", ";
        names += b;
      }
      res.stats.converged = false;
      res.stats.reason = ConvergedReason::kDivergedSdc;
      res.stats.detail = "setup-immutable operator corrupted (" + names + ")";
    }
  }

  if (auto& report = obs::SolverReport::global(); report.enabled()) {
    obs::KrylovRecord rec;
    rec.label = "stokes_outer";
    rec.method = opts_.outer == OuterKrylov::kGcr ? "gcr" : "fgmres";
    rec.converged = res.stats.converged;
    rec.iterations = res.stats.iterations;
    rec.initial_residual = res.stats.initial_residual;
    rec.final_residual = res.stats.final_residual;
    rec.seconds = res.solve_seconds;
    rec.reason = res.stats.reason_message();
    rec.history = res.stats.history;
    report.add_krylov(std::move(rec));

    if (opts_.kernel.engine != nullptr) {
      // Cumulative engine stats (set_decomposition overwrites, so repeated
      // solves through one engine keep the section current).
      const DecompStats ds = opts_.kernel.engine->stats();
      obs::DecompRecord dr;
      dr.px = ds.px;
      dr.py = ds.py;
      dr.pz = ds.pz;
      dr.applies = ds.applies;
      dr.halo_bytes_sent = ds.halo_bytes_sent;
      dr.halo_bytes_received = ds.halo_bytes_received;
      dr.exchange_seconds = ds.exchange_seconds;
      dr.interior_seconds = ds.interior_seconds;
      dr.boundary_seconds = ds.boundary_seconds;
      dr.interior_elements = ds.interior_elements;
      dr.boundary_elements = ds.boundary_elements;
      report.set_decomposition(dr);
    }
  }

  op_->extract_u(x, res.u);
  op_->extract_p(x, res.p);
  return res;
}

ScrStats StokesSolver::solve_scr(const Vector& f, Vector& u, Vector& p,
                                 const ScrOptions& scr_opts) const {
  Vector rhs = op_->build_rhs(f);
  Vector x;
  ScrStats st = scr_solve(*op_, *vpc_, *schur_, rhs, x, scr_opts);
  op_->extract_u(x, u);
  op_->extract_p(x, p);
  return st;
}

} // namespace ptatin
