// Stokes coupling blocks: discrete gradient B = J_up, divergence B^T = J_pu,
// the body-force right-hand side, and the viscosity-scaled pressure mass
// matrix used as the Schur complement preconditioner (§III-B).
#pragma once

#include <functional>
#include <vector>

#include "common/small_mat.hpp"
#include "fem/bc.hpp"
#include "fem/mesh.hpp"
#include "ksp/pc.hpp"
#include "la/csr.hpp"
#include "stokes/coefficient.hpp"

namespace ptatin {

class SubdomainEngine;

/// Assemble the gradient block B (nvel x npres):
/// B[(i,c)(e,k)] = -int_e psi_k dN_i/dx_c dV, so that the coupled system is
/// [A B; B^T 0][u p] = [f 0].
CsrMatrix assemble_gradient_block(const StructuredMesh& mesh);

/// Gravitational body-force RHS of the system [A B; B^T 0][u p] = [f 0]:
/// f[(i,c)] = +int rho g_c N_i dV, so dense material sinks when g points
/// down. (The paper's Eq. 10 writes F(w) = -int f.w with its Eq. 1 sign
/// convention; the physical weak form used here absorbs that minus.)
Vector assemble_body_force(const StructuredMesh& mesh,
                           const QuadCoefficients& coeff, const Vec3& gravity);

/// Subdomain-parallel residual assembly: the same element kernel swept per
/// subdomain and halo-exchanged (docs/PARALLELISM.md). Falls back to the
/// global colored loop when `engine` is null.
Vector assemble_body_force(const StructuredMesh& mesh,
                           const QuadCoefficients& coeff, const Vec3& gravity,
                           const SubdomainEngine* engine);

/// Neumann traction term of Eq. 10: f[(i,c)] += int_Gamma t_c(x) N_i dS over
/// one mesh face (sigma.n = t on Gamma_N, Eq. 5). The surface uses the 3x3
/// Gauss rule with Q2 test functions and the bilinear face geometry.
Vector assemble_traction_force(const StructuredMesh& mesh, MeshFace face,
                               const std::function<Vec3(const Vec3&)>& traction);

/// General volumetric forcing f[(i,c)] = int f_c(x) N_i dV for an arbitrary
/// position-dependent body force (manufactured-solution verification).
Vector assemble_forcing(const StructuredMesh& mesh,
                        const std::function<Vec3(const Vec3&)>& force);

/// Viscosity-scaled pressure mass matrix, inverted element-block-wise:
/// M[(e,k)(e,l)] = int_e psi_k psi_l / eta dV. Since P1disc is discontinuous
/// the matrix is block-diagonal with 4x4 blocks; apply() performs the exact
/// block solve — the Schur complement preconditioner S~ of §III-B.
class PressureMassSchur : public Preconditioner {
public:
  PressureMassSchur(const StructuredMesh& mesh, const QuadCoefficients& coeff);

  /// z <- M^{-1} r (sign handled by the caller; M itself is SPD).
  void apply(const Vector& r, Vector& z) const override;

  /// y <- M x (forward product, used in tests).
  void mult(const Vector& x, Vector& y) const;

  Index size() const { return 4 * nel_; }

  /// Recompute the blocks after a viscosity update.
  void update(const StructuredMesh& mesh, const QuadCoefficients& coeff);

private:
  Index nel_ = 0;
  /// Per element: the 4x4 mass block and its inverse, row-major.
  std::vector<Real> blocks_;
  std::vector<Real> inv_blocks_;
};

} // namespace ptatin
