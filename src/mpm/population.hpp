// Material point population control.
//
// Large deformation drains points from stretched regions and crowds them in
// compressed ones. Cells below `min_per_element` receive new points cloned
// from the nearest existing point (preserving lithology and history); cells
// above `max_per_element` lose their newest points.
#pragma once

#include "fem/mesh.hpp"
#include "mpm/points.hpp"

namespace ptatin {

struct PopulationOptions {
  Index min_per_element = 4;
  Index max_per_element = 64;
  int inject_per_dim = 2; ///< injected points per direction in deficient cells
};

struct PopulationStats {
  Index injected = 0;
  Index removed = 0;
  Index deficient_elements = 0;
  /// Post-control per-cell population extremes (0/0 when no elements).
  Index min_per_cell = 0;
  Index max_per_cell = 0;
};

/// Per-cell population extremes of the current point distribution (points
/// with no containing element are ignored). Used by the health-check pass to
/// enforce the [min_per_element, max_per_element] band without mutating.
void population_bounds(const StructuredMesh& mesh, const MaterialPoints& points,
                       Index& min_per_cell, Index& max_per_cell);

/// One injection/removal sweep. Injection requires donors in the 27-element
/// neighborhood, so a single sweep only grows the populated region by one
/// element ring.
PopulationStats control_population_sweep(const StructuredMesh& mesh,
                                         const PopulationOptions& opts,
                                         MaterialPoints& points);

/// Repeated sweeps until every element meets the minimum (or no donor can
/// reach the remaining deficient cells).
PopulationStats control_population(const StructuredMesh& mesh,
                                   const PopulationOptions& opts,
                                   MaterialPoints& points);

} // namespace ptatin
