// Minimal JSON value tree: writer + parser for the telemetry subsystem.
//
// Every machine-readable artifact this repo emits — Chrome traces, solver
// reports, BENCH_*.json trajectories — goes through this one writer so the
// formats stay consistent and round-trippable. Object key order is preserved
// (insertion order), numbers are emitted with enough digits to round-trip
// doubles exactly, and the parser accepts exactly what the writer produces
// (plus standard JSON it might receive from hand-edited baselines).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace ptatin::obs {

class JsonValue {
public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double v) : type_(Type::kNumber), num_(v) {}
  JsonValue(int v) : type_(Type::kNumber), num_(v) {}
  JsonValue(long v) : type_(Type::kNumber), num_(double(v)) {}
  JsonValue(long long v) : type_(Type::kNumber), num_(double(v)) {}
  JsonValue(const char* s) : type_(Type::kString), str_(s) {}
  JsonValue(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Object access: inserts a null member when the key is absent. Calling on
  /// a null value promotes it to an object (builder convenience).
  JsonValue& operator[](const std::string& key);
  /// Lookup without insertion; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Array append. Calling on a null value promotes it to an array.
  void push_back(JsonValue v);

  std::size_t size() const;
  const JsonValue& at(std::size_t i) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Serialize. indent=0 gives compact one-line output; indent>0 pretty-
  /// prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parse a JSON document. Throws ptatin::Error on malformed input; the
  /// message carries the line/column/offset of the failure. Strict where it
  /// matters for job-spec ingestion: duplicate object keys, trailing
  /// characters after the document, unescaped control characters, and lone
  /// surrogate \u escapes are all rejected (surrogate *pairs* decode to
  /// UTF-8).
  static JsonValue parse(const std::string& text);

private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string json_escape(const std::string& s);

/// Format a double with enough precision to round-trip exactly.
std::string json_number(double v);

} // namespace ptatin::obs
