#include "stokes/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptatin {

void compute_element_geometry(const Real xe[kQ1NodesPerEl][3],
                              ElementGeometry& g) {
  const auto& geom = geom_tabulation();
  const auto& tab = q2_tabulation();
  for (int q = 0; q < kQuadPerEl; ++q) {
    // J_rd = d x_r / d xi_d = sum_v xe[v][r] dN_v/dxi_d.
    Mat3 J{};
    Real xq[3] = {0, 0, 0};
    for (int v = 0; v < kQ1NodesPerEl; ++v) {
      for (int r = 0; r < 3; ++r) {
        xq[r] += geom.N[q][v] * xe[v][r];
        for (int d = 0; d < 3; ++d) J[3 * r + d] += xe[v][r] * geom.dN[q][v][d];
      }
    }
    const Real det = det3(J);
    PT_DEBUG_ASSERT(det > 0.0);
    g.gamma[q] = inv3(J, det); // gamma_dr = d xi_d / d x_r
    g.wdetj[q] = tab.w[q] * det;
    for (int r = 0; r < 3; ++r) g.xq[q][r] = xq[r];
  }
}

P1Frame compute_p1_frame(const Real xe[kQ1NodesPerEl][3]) {
  P1Frame f{};
  for (int d = 0; d < 3; ++d) {
    Real lo = xe[0][d], hi = xe[0][d];
    for (int v = 1; v < kQ1NodesPerEl; ++v) {
      lo = std::min(lo, xe[v][d]);
      hi = std::max(hi, xe[v][d]);
    }
    f.center[d] = Real(0.5) * (lo + hi);
    const Real half = Real(0.5) * (hi - lo);
    f.scale[d] = half > 0 ? Real(1) / half : Real(1);
  }
  return f;
}

void element_geometry(const StructuredMesh& mesh, Index e, ElementGeometry& g) {
  Real xe[kQ1NodesPerEl][3];
  mesh.element_corner_coords(e, xe);
  compute_element_geometry(xe, g);
}

P1Frame element_p1_frame(const StructuredMesh& mesh, Index e) {
  Real xe[kQ1NodesPerEl][3];
  mesh.element_corner_coords(e, xe);
  return compute_p1_frame(xe);
}

} // namespace ptatin
