// Timestep safeguard tier: checkpoint rollback + adaptive-dt retry.
//
// Long runs (1500-2000 steps, §V-A) cannot afford to die on one bad step.
// SafeguardedStepper wraps PtatinContext::step: it snapshots the full model
// state in memory before each step, detects failure afterwards (nonlinear
// failure report, thrown Error, or non-finite fields), and on failure rolls
// the state back and retries with dt * dt_cut_factor, up to max_retries
// times. After a successful recovery the step size grows back gradually
// (dt_grow_factor per clean step) instead of jumping straight to the CFL
// suggestion that just failed. Full taxonomy and knobs: docs/ROBUSTNESS.md.
//
// Plain iteration-budget exhaustion is NOT treated as failure — loosely
// converged steps are business as usual for inexact time stepping; only
// fatal diagnoses (NaN, divergence, stagnation, linear breakdown) trigger a
// rollback.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "ptatin/context.hpp"

namespace ptatin {

struct SafeguardOptions {
  int max_retries = 3;       ///< rollback/retry attempts per step
  Real dt_cut_factor = 0.5;  ///< dt multiplier per retry
  Real dt_grow_factor = 1.5; ///< cap growth per clean step after a cut
  Real dt_min = 0.0;         ///< give up when the retry dt would drop below
  bool check_fields = true;  ///< NaN/Inf scan of u/p/T after each step
};

/// Outcome of one safeguarded step (possibly several attempts).
struct SafeguardedStepResult {
  bool ok = false;    ///< some attempt completed cleanly
  Real dt_used = 0.0; ///< dt of the final attempt
  int retries = 0;    ///< rollbacks taken before success / giving up
  StepReport report;  ///< per-stage stats of the final attempt
  std::vector<std::string> failures; ///< failure reason per failed attempt
};

class SafeguardedStepper {
public:
  explicit SafeguardedStepper(PtatinContext& ctx,
                              const SafeguardOptions& opts = {});

  /// Advance by (at most) dt, retrying with smaller steps on failure. The
  /// requested dt is first clamped by the recovery cap left behind by
  /// earlier failures.
  SafeguardedStepResult advance(Real dt);

  /// The requested dt after applying the recovery cap (what advance() will
  /// actually attempt first).
  Real clamp_dt(Real dt) const { return dt < dt_cap_ ? dt : dt_cap_; }

  /// Current recovery cap (infinity when no failure is being recovered
  /// from).
  Real dt_cap() const { return dt_cap_; }

  int steps_taken() const { return step_index_; }

private:
  /// Empty string = clean step; otherwise the failure diagnosis.
  std::string diagnose(const StepReport& report) const;

  PtatinContext& ctx_;
  SafeguardOptions opts_;
  Real dt_cap_ = std::numeric_limits<Real>::infinity();
  int step_index_ = 0; ///< 1-based, counts advance() calls
};

} // namespace ptatin
