// Timestep safeguard tier: checkpoint rollback + adaptive-dt retry, plus the
// run-health watchdog and durable checkpoint rotation.
//
// Long runs (1500-2000 steps, §V-A) cannot afford to die on one bad step.
// SafeguardedStepper wraps PtatinContext::step: it snapshots the full model
// state in memory before each step, detects failure afterwards (nonlinear
// failure report, thrown Error, non-finite fields, or a failed health
// check), and on failure rolls the state back and retries with
// dt * dt_cut_factor, up to max_retries times. After a successful recovery
// the step size grows back gradually (dt_grow_factor per clean step) instead
// of jumping straight to the CFL suggestion that just failed. Full taxonomy
// and knobs: docs/ROBUSTNESS.md.
//
// The health watchdog (src/ptatin/health.hpp) runs inside the attempt loop
// every health_every steps and on every step that is about to be durably
// checkpointed, so a poisoned state is rolled back and retried instead of
// being published to disk. When checkpoint_dir is set, every
// checkpoint_every-th successful (and healthy) step is saved through a
// CheckpointRotation (atomic publication, CRC-verified sections, last
// checkpoint_keep files kept); resume() restores the step counter, simulated
// time, and dt recovery cap from a loaded CheckpointMeta.
//
// Plain iteration-budget exhaustion is NOT treated as failure — loosely
// converged steps are business as usual for inexact time stepping; only
// fatal diagnoses (NaN, divergence, stagnation, linear breakdown, health
// trips) trigger a rollback.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/sealed.hpp"
#include "ptatin/checkpoint.hpp"
#include "ptatin/context.hpp"
#include "ptatin/health.hpp"
#include "ptatin/scrub.hpp"

namespace ptatin {

class SolverConfig;

struct SafeguardOptions {
  int max_retries = 3;       ///< rollback/retry attempts per step
  Real dt_cut_factor = 0.5;  ///< dt multiplier per retry
  Real dt_grow_factor = 1.5; ///< cap growth per clean step after a cut
  Real dt_min = 0.0;         ///< give up when the retry dt would drop below
  bool check_fields = true;  ///< NaN/Inf scan of u/p/T after each step

  // Run-health watchdog (docs/ROBUSTNESS.md).
  int health_every = 0;      ///< full health check every N steps (0 = only
                             ///< before checkpoint saves)
  HealthOptions health;

  // Durable checkpoint rotation ("" = no on-disk checkpoints).
  std::string checkpoint_dir;
  int checkpoint_every = 0;  ///< save cadence in steps (0 = off)
  int checkpoint_keep = 3;   ///< checkpoints retained in the rotation

  // Silent-data-corruption defense (docs/ROBUSTNESS.md). seal_state CRC-seals
  // the model state (mesh coords, u/p/T, material point slabs) at the end of
  // each successful step and verifies it on reentry; a mismatch is healed by
  // restoring the last good snapshot and replaying at the SAME dt. A
  // sanctioned out-of-band mutation (checkpoint restore, test setup) is
  // recognized through PtatinContext::state_epoch() and disarms the seal
  // instead of tripping it. scrub_every sweeps the process-wide seal registry
  // (setup-immutable operator data) every N steps; a scrub mismatch has no
  // rollback snapshot and is unrecoverable ("sdc:" failure, exit code 6).
  bool seal_state = true;
  int scrub_every = 0;
};

/// Outcome of one safeguarded step (possibly several attempts).
struct SafeguardedStepResult {
  bool ok = false;    ///< some attempt completed cleanly
  Real dt_used = 0.0; ///< dt of the final attempt
  int retries = 0;    ///< rollbacks taken before success / giving up
  StepReport report;  ///< per-stage stats of the final attempt
  std::vector<std::string> failures; ///< failure reason per failed attempt
  std::string checkpoint_path; ///< durable checkpoint published this step
  bool preempted = false; ///< the preemption hook fired; no step was taken
};

class SafeguardedStepper {
public:
  explicit SafeguardedStepper(PtatinContext& ctx,
                              const SafeguardOptions& opts = {});

  /// Configure from the unified solver configuration (ptatin/config.hpp):
  /// equivalent to passing config.safeguard().
  SafeguardedStepper(PtatinContext& ctx, const SolverConfig& config);

  /// Advance by (at most) dt, retrying with smaller steps on failure. The
  /// requested dt is first clamped by the recovery cap left behind by
  /// earlier failures.
  SafeguardedStepResult advance(Real dt);

  /// Resume the step counter, simulated time, and dt recovery cap from a
  /// restored checkpoint (CheckpointMeta from load_checkpoint or
  /// CheckpointRotation::load_latest).
  void resume(const CheckpointMeta& meta);

  /// The requested dt after applying the recovery cap (what advance() will
  /// actually attempt first).
  Real clamp_dt(Real dt) const { return dt < dt_cap_ ? dt : dt_cap_; }

  /// Current recovery cap (infinity when no failure is being recovered
  /// from).
  Real dt_cap() const { return dt_cap_; }

  int steps_taken() const { return step_index_; }
  Real sim_time() const { return sim_time_; }

  /// The durable rotation, when checkpoint_dir was configured.
  CheckpointRotation* rotation() { return rotation_.get(); }

  /// Cooperative preemption (docs/SERVICE.md): the hook is polled at the top
  /// of advance(); when it returns true the step is NOT attempted — advance()
  /// publishes a boundary checkpoint through the rotation (when configured)
  /// and returns preempted=true, leaving the stepper at the same step
  /// boundary so a later resume() continues bitwise-identically to an
  /// uninterrupted run.
  void set_preemption_hook(std::function<bool()> hook) {
    preempt_hook_ = std::move(hook);
  }

private:
  /// Empty string = clean step; otherwise the failure diagnosis.
  std::string diagnose(const StepReport& report) const;
  /// Verify the state seal at the step boundary; restores the last good
  /// snapshot on a mismatch. Returns an "sdc:" failure string when the
  /// corruption could not be healed ("" = intact, healed, or disarmed).
  std::string verify_seal_on_reentry();
  /// Re-arm the state seal over the current (post-step) model state.
  void arm_seal();

  PtatinContext& ctx_;
  SafeguardOptions opts_;
  std::function<bool()> preempt_hook_;
  std::unique_ptr<CheckpointRotation> rotation_;
  Real dt_cap_ = std::numeric_limits<Real>::infinity();
  Real sim_time_ = 0.0;
  int step_index_ = 0; ///< 1-based, counts advance() calls

  // SDC defense state: the seal over the between-steps model state, the
  // context epoch it was armed at, the snapshot it heals from (also reused
  // as the rollback snapshot while the seal attests it still matches the
  // live state), and the registry scrubber.
  sdc::Seal state_seal_;
  long long seal_epoch_ = 0;
  MemoryCheckpoint last_good_;
  sdc::Scrubber scrubber_;
};

} // namespace ptatin
