// Multi-process transport backend: forked worker processes as the validated
// exchange fabric (docs/TRANSPORT.md).
//
// Topology. configure() forks W workers (W = min(num_ranks, num_workers or
// 4)); rank r's traffic is routed through worker r % W ("subdomain group").
// Each worker is connected to the parent by one UNIX SOCK_STREAM socketpair.
// Workers are deliberately stateless routers: a worker reads CRC-framed
// payloads, validates them, and echoes them back; the parent delivers the
// validated bytes into per-channel mailboxes / per-rank message inboxes. The
// element kernels themselves stay in the parent's threads (they are C++
// closures that cannot cross a process boundary), so every halo byte — but
// no compute — round-trips through the fabric. Because delivered bytes are
// the exact posted bytes and the accumulation order is fixed by the engine,
// results are bitwise identical to the in-memory backend.
//
// Robustness (the supervisor state machine, docs/TRANSPORT.md):
//   - every frame carries a header CRC, payload CRC and per-connection seq;
//     a worker that sees stream damage (torn/corrupt frame) NACKs and the
//     parent retransmits every undelivered payload for that worker;
//   - workers heartbeat every heartbeat_ms; the parent RX thread tracks the
//     last beacon per worker and EOF on the socket (kill -9, crash);
//   - collect()/receive_messages() wait with exponential backoff
//     (backoff_base_ms doubling), retransmitting undelivered payloads each
//     wait slice; after worker_timeout_ms without delivery the worker is
//     declared wedged, SIGKILLed, reaped, respawned (fresh socketpair, seq
//     space reset, undelivered payloads re-encoded and retransmitted) —
//     up to max_worker_restarts times per worker;
//   - when the restart budget is exhausted the transport degrades: payloads
//     are delivered directly from the retained send copies (bitwise
//     identical, accounted as degraded_deliveries) — or, with
//     allow_degraded=false, TransportError is thrown for the
//     SafeguardedStepper to heal() and replay the step.
//
// Fault-injection sites (deterministic, docs/ROBUSTNESS.md): transport.drop
// (frame never written), transport.truncate (half a frame written — torn
// stream), transport.delay (send stalls one heartbeat period),
// transport.worker_kill (SIGKILL a worker at epoch start).
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "transport/frame.hpp"
#include "transport/transport.hpp"

namespace ptatin::transport {

class ProcessTransport : public Transport {
public:
  explicit ProcessTransport(const TransportOptions& opts);
  ~ProcessTransport() override;

  void configure(Index num_ranks,
                 const std::vector<ChannelDesc>& channels) override;
  void begin_epoch() override;
  void post(Index channel, const Real* data, std::size_t count) override;
  const Real* collect(Index channel, std::size_t count) override;
  void send_message(Index src, Index dst, std::uint64_t round,
                    const void* bytes, std::size_t len) override;
  std::vector<Message> receive_messages(Index dst, std::size_t expected,
                                        std::uint64_t round) override;
  void heal() override;

  TransportKind kind() const override { return TransportKind::kProcess; }
  TransportStats stats() const override;
  void reset_stats() override;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// Worker routing rank r's traffic.
  int worker_of(Index rank) const {
    return static_cast<int>(rank % static_cast<Index>(workers_.size()));
  }
  /// Test hook: signal a worker process (e.g. SIGKILL to simulate a crash).
  void kill_worker(int w, int sig);
  /// Test hook: the pid of worker w (-1 when not running).
  pid_t worker_pid(int w) const;

private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1; ///< parent side of the socketpair (non-blocking)
    std::uint64_t generation = 0; ///< bumped on every (re)spawn
    std::uint64_t tx_seq = 0;
    FrameReader reader;
    SequenceAssembler assembler;
    std::chrono::steady_clock::time_point last_heartbeat{};
    std::chrono::steady_clock::time_point last_spawn{};
    bool alive = false;
    bool degraded = false; ///< restart budget exhausted
    int restarts = 0;
  };
  /// Retained copy of a posted/sent payload, kept until its echo is
  /// delivered so it can be retransmitted (same seq on the same connection,
  /// fresh seq after a respawn) or delivered directly in degraded mode.
  struct Pending {
    FrameType type = FrameType::kData;
    std::int32_t src = 0, dst = 0;
    std::int32_t channel = 0;  ///< halo channel id / message ordinal
    std::uint64_t key = 0;     ///< epoch (kData) or round (kMessage)
    std::uint64_t seq = 0;     ///< seq of the last transmission
    std::vector<std::uint8_t> payload;
    bool delivered = false;
  };
  struct Mailbox {
    std::vector<Real> data;
    std::size_t count = 0;
    std::uint64_t epoch = ~0ull;
    bool ready = false;
  };

  void spawn_worker_locked(int w);
  void shutdown_workers();
  void rx_loop();
  /// Write one encoded frame to worker w (non-blocking fd; short poll on a
  /// full buffer). Returns false when the worker cannot accept bytes.
  bool send_bytes_locked(Worker& w, const std::vector<std::uint8_t>& bytes);
  /// Encode and transmit a pending payload to its worker, applying the
  /// fault-injection sites. Assigns a fresh seq when `fresh_seq`.
  void transmit_locked(Pending& p, bool fresh_seq);
  void retransmit_undelivered_locked(int w, bool fresh_seq);
  void handle_frame_locked(int w, Frame&& f);
  /// Kill/reap/respawn worker w after a backoff; false when the restart
  /// budget is exhausted (worker marked degraded).
  bool recover_worker_locked(int w);
  bool worker_wedged_locked(const Worker& w) const;
  /// Deliver a pending payload without the fabric (degraded mode).
  void deliver_direct_locked(Pending& p);
  /// Common wait/retransmit/recover/degrade loop shared by collect() and
  /// receive_messages(). `done` is evaluated under mu_; `w` is the worker
  /// the caller is waiting on.
  template <class DonePred>
  void await_delivery(int w, DonePred&& done, const char* what);

  TransportOptions opts_;
  Index num_ranks_ = 0;
  std::vector<ChannelDesc> channels_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Worker> workers_;
  std::vector<Mailbox> mailboxes_;       ///< one per halo channel
  std::vector<Pending> chan_pending_;    ///< one per halo channel
  std::vector<Pending> msg_pending_;     ///< in send order
  std::vector<std::vector<Message>> inbox_; ///< per dst rank
  /// Message dedupe: (src, dst, round, ordinal) already delivered.
  std::set<std::tuple<std::int32_t, std::int32_t, std::uint64_t,
                      std::uint64_t>>
      msg_seen_;
  std::map<std::tuple<Index, Index, std::uint64_t>, std::uint64_t>
      msg_ordinal_; ///< next ordinal per (src, dst, round)
  std::vector<int> graveyard_fds_; ///< closed by the RX thread only
  std::uint64_t epoch_ = 0;
  std::uint64_t max_round_ = ~0ull;
  /// Reader/assembler counters banked across worker respawns (a respawn
  /// resets the live objects).
  long long crc_rejected_acc_ = 0;
  long long reordered_acc_ = 0;
  long long duplicates_acc_ = 0;

  std::thread rx_thread_;
  std::atomic<bool> rx_stop_{false};

  std::atomic<long long> frames_sent_{0}, frames_received_{0};
  std::atomic<long long> bytes_sent_{0}, bytes_received_{0};
  std::atomic<long long> retransmits_{0}, timeouts_{0}, heartbeats_{0};
  std::atomic<long long> restarts_{0}, degraded_deliveries_{0};
  std::atomic<long long> duplicates_dropped_{0};
};

} // namespace ptatin::transport
