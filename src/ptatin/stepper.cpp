#include "ptatin/stepper.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "ptatin/checkpoint.hpp"

namespace ptatin {

namespace {

bool all_finite(const Vector& v) {
  for (Index i = 0; i < v.size(); ++i)
    if (!std::isfinite(v[i])) return false;
  return true;
}

} // namespace

SafeguardedStepper::SafeguardedStepper(PtatinContext& ctx,
                                       const SafeguardOptions& opts)
    : ctx_(ctx), opts_(opts) {}

std::string SafeguardedStepper::diagnose(const StepReport& report) const {
  if (report.nonlinear.failure != NonlinearFailure::kNone) {
    std::string msg =
        std::string("nonlinear: ") + to_string(report.nonlinear.failure);
    if (!report.nonlinear.failure_detail.empty())
      msg += " (" + report.nonlinear.failure_detail + ")";
    return msg;
  }
  if (opts_.check_fields &&
      (!all_finite(ctx_.velocity()) || !all_finite(ctx_.pressure()) ||
       !all_finite(ctx_.temperature())))
    return "non-finite values in solution fields";
  return {};
}

SafeguardedStepResult SafeguardedStepper::advance(Real dt) {
  auto& metrics = obs::MetricsRegistry::instance();
  SafeguardedStepResult res;
  ++step_index_;
  dt = clamp_dt(dt);

  // Snapshot for rollback. A failed snapshot (full disk has no analogue in
  // memory, but fault injection and OOM do) degrades to an unguarded step
  // rather than refusing to advance.
  MemoryCheckpoint snapshot;
  try {
    snapshot.capture(ctx_);
  } catch (const Error& e) {
    metrics.counter("safeguard.snapshot_failures").inc();
    log_warn("safeguard: state snapshot failed (", e.what(),
             ") — stepping without rollback protection");
  }

  for (int attempt = 0;; ++attempt) {
    res.dt_used = dt;
    std::string failure;
    try {
      res.report = ctx_.step(dt);
      failure = diagnose(res.report);
    } catch (const Error& e) {
      failure = std::string("exception: ") + e.what();
    }

    if (failure.empty()) {
      res.ok = true;
      res.retries = attempt;
      break;
    }

    metrics.counter("safeguard.step_failures").inc();
    res.failures.push_back(failure);
    log_warn("safeguard: step ", step_index_, " attempt ", attempt + 1,
             " failed (", failure, ") at dt = ", dt);

    const Real dt_next = dt * opts_.dt_cut_factor;
    if (!snapshot.valid() || attempt >= opts_.max_retries ||
        !(dt_next > opts_.dt_min)) {
      res.retries = attempt;
      break; // unrecoverable: report failure to the caller
    }

    snapshot.restore(ctx_);
    dt = dt_next;
    metrics.counter("safeguard.rollbacks").inc();
    metrics.counter("safeguard.dt_cuts").inc();
    metrics.counter("safeguard.retries").inc();
  }

  // Step-size recovery: a retried step leaves a cap at the dt that worked;
  // clean steps relax it geometrically until it disappears.
  if (res.ok && res.retries > 0) {
    dt_cap_ = res.dt_used;
  } else if (res.ok && std::isfinite(dt_cap_)) {
    dt_cap_ *= opts_.dt_grow_factor;
    if (dt_cap_ >= res.dt_used * opts_.dt_grow_factor)
      dt_cap_ = std::numeric_limits<Real>::infinity();
  }

  if (auto& report = obs::SolverReport::global();
      report.enabled() && (!res.ok || res.retries > 0)) {
    obs::SafeguardRecord rec;
    rec.step = step_index_;
    rec.recovered = res.ok;
    rec.retries = res.retries;
    // Reconstruct the attempted dt sequence (every retry applied one cut,
    // so walk back up from the final attempt's dt).
    const std::size_t attempts = res.failures.size() + (res.ok ? 1u : 0u);
    rec.dt_history.assign(attempts, 0.0);
    Real d = res.dt_used;
    for (std::size_t i = attempts; i-- > 0;) {
      rec.dt_history[i] = d;
      d /= opts_.dt_cut_factor;
    }
    rec.failures = res.failures;
    report.add_safeguard(std::move(rec));
  }
  if (!res.ok) metrics.counter("safeguard.unrecovered_steps").inc();
  return res;
}

} // namespace ptatin
