#include "ptatin/coefficients.hpp"

#include "common/parallel.hpp"
#include "mpm/projection.hpp"
#include "stokes/fields.hpp"

namespace ptatin {

namespace {

/// Evaluate the rheology state at one located material point.
RheologyState point_state(const StructuredMesh& mesh, const Vector& u,
                          const Vector& p, const Vector* temperature,
                          const MaterialPoints& points, Index i) {
  RheologyState st;
  const Index e = points.element(i);
  const Vec3 xi = points.local_coord(i);
  st.j2 = strain_rate_at_point(mesh, u, e, xi).j2;
  st.pressure = pressure_at_point(mesh, p, e, points.position(i));
  if (temperature != nullptr)
    st.temperature = interpolate_vertex_field(mesh, *temperature, e, xi);
  st.plastic_strain = points.plastic_strain(i);
  return st;
}

} // namespace

Real update_coefficients_from_points(
    const StructuredMesh& mesh, const MaterialTable& materials,
    const MaterialPoints& points, const Vector& u, const Vector& p,
    const Vector* temperature, bool newton_terms,
    const CoefficientPipelineOptions& opts, QuadCoefficients& coeff) {
  PT_ASSERT(coeff.num_elements() == mesh.num_elements());
  const Index n = points.size();

  std::vector<Real> eta_p(n, opts.fallback_eta);
  std::vector<Real> rho_p(n, opts.fallback_rho);
  std::vector<Real> deta_p(newton_terms ? n : 0, 0.0);
  std::vector<std::uint8_t> yielded(n, 0);

  parallel_for(n, [&](Index i) {
    if (points.element(i) < 0) return;
    const RheologyState st =
        point_state(mesh, u, p, temperature, points, i);
    const FlowLaw& law = materials.law(points.lithology(i));
    const ViscosityEval ve = law.viscosity(st);
    eta_p[i] = ve.eta;
    rho_p[i] = law.density(st);
    if (newton_terms) deta_p[i] = ve.deta_dj2;
    yielded[i] = ve.yielded ? 1 : 0;
  });

  // Project to quadrature points (Eq. 12-13).
  std::vector<Real> eta_q, rho_q, deta_q;
  project_to_quadrature(mesh, points, eta_p, eta_q, opts.fallback_eta,
                        opts.decomp);
  project_to_quadrature(mesh, points, rho_p, rho_q, opts.fallback_rho,
                        opts.decomp);
  if (newton_terms)
    project_to_quadrature(mesh, points, deta_p, deta_q, 0.0, opts.decomp);

  if (newton_terms && !coeff.has_newton()) coeff.allocate_newton();

  // D0 sampled directly at quadrature points from the current velocity.
  std::vector<StrainRateSample> sr;
  if (newton_terms) evaluate_strain_rates(mesh, u, sr);

  parallel_for(mesh.num_elements(), [&](Index e) {
    for (int q = 0; q < kQuadPerEl; ++q) {
      coeff.eta(e, q) = eta_q[e * kQuadPerEl + q];
      coeff.rho(e, q) = rho_q[e * kQuadPerEl + q];
      if (newton_terms) {
        coeff.deta(e, q) = deta_q[e * kQuadPerEl + q];
        const auto& s = sr[e * kQuadPerEl + q];
        for (int t = 0; t < kSymSize; ++t) coeff.d0(e, q)[t] = s.d[t];
      }
    }
  });

  Real yield_count = 0;
  for (Index i = 0; i < n; ++i) yield_count += yielded[i];
  return n > 0 ? yield_count / Real(n) : 0.0;
}

Index accumulate_plastic_strain(const StructuredMesh& mesh,
                                const MaterialTable& materials,
                                const Vector& u, const Vector& p,
                                const Vector* temperature, Real dt,
                                MaterialPoints& points) {
  const Index n = points.size();
  std::vector<std::uint8_t> hit(n, 0);
  parallel_for(n, [&](Index i) {
    if (points.element(i) < 0) return;
    const RheologyState st =
        point_state(mesh, u, p, temperature, points, i);
    const FlowLaw& law = materials.law(points.lithology(i));
    if (law.viscosity(st).yielded) {
      points.plastic_strain(i) += std::sqrt(std::max(st.j2, Real(0))) * dt;
      hit[i] = 1;
    }
  });
  Index count = 0;
  for (Index i = 0; i < n; ++i) count += hit[i];
  return count;
}

} // namespace ptatin
