#include "obs/perf.hpp"

#include <iomanip>
#include <sstream>

namespace ptatin {

PerfRegistry& PerfRegistry::instance() {
  static PerfRegistry reg;
  return reg;
}

PerfRegistry::ThreadDeltas& PerfRegistry::local() {
  thread_local ThreadDeltas* td = nullptr;
  if (td == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    threads_.push_back(std::make_unique<ThreadDeltas>());
    td = threads_.back().get();
  }
  return *td;
}

void PerfRegistry::add_sample(const std::string& name, double seconds,
                              double flops, double bytes_perfect,
                              double bytes_pessimal) {
  Delta& d = local().pending[name];
  d.seconds += seconds;
  d.flops += flops;
  d.bytes_perfect += bytes_perfect;
  d.bytes_pessimal += bytes_pessimal;
  ++d.calls;
}

void PerfRegistry::flush_locked() const {
  for (auto& td : threads_) {
    for (auto& [name, d] : td->pending) {
      PerfEvent& ev = events_[name];
      ev.total_seconds += d.seconds;
      ev.call_count += d.calls;
      ev.flops += d.flops;
      ev.bytes_perfect += d.bytes_perfect;
      ev.bytes_pessimal += d.bytes_pessimal;
    }
    td->pending.clear();
  }
}

PerfEvent& PerfRegistry::event(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
  return events_[name];
}

const std::map<std::string, PerfEvent>& PerfRegistry::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
  return events_;
}

void PerfRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& td : threads_) td->pending.clear();
  for (auto& [name, ev] : events_) ev.reset();
}

std::string PerfRegistry::summary() const {
  const auto& evs = events(); // flushes
  std::ostringstream os;
  os << std::left << std::setw(24) << "Event" << std::right << std::setw(10)
     << "Calls" << std::setw(12) << "Time (s)" << std::setw(12) << "GF/s"
     << "\n";
  for (const auto& [name, ev] : evs) {
    if (ev.calls() == 0) continue;
    os << std::left << std::setw(24) << name << std::right << std::setw(10)
       << ev.calls() << std::setw(12) << std::fixed << std::setprecision(4)
       << ev.seconds() << std::setw(12) << std::setprecision(2)
       << ev.gflops_per_sec() << "\n";
  }
  return os.str();
}

} // namespace ptatin
