#include "ptatin/stepper.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/log.hpp"
#include "ptatin/config.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace ptatin {

namespace {

bool all_finite(const Vector& v) {
  for (Index i = 0; i < v.size(); ++i)
    if (!std::isfinite(v[i])) return false;
  return true;
}

/// The between-steps quiescent model state under the SDC seal: everything
/// the solve trusts on reentry (mesh geometry, solution fields, material
/// point slabs). Enumerated fresh at every arm/verify so container
/// reallocation between steps cannot dangle.
std::vector<sdc::Region> state_regions(const PtatinContext& ctx) {
  std::vector<sdc::Region> r;
  const auto& coords = ctx.mesh().coords();
  r.push_back({"state.coords", coords.data(), coords.size() * sizeof(Real)});
  r.push_back({"state.velocity", ctx.velocity().data(),
               std::size_t(ctx.velocity().size()) * sizeof(Real)});
  r.push_back({"state.pressure", ctx.pressure().data(),
               std::size_t(ctx.pressure().size()) * sizeof(Real)});
  r.push_back({"state.temperature", ctx.temperature().data(),
               std::size_t(ctx.temperature().size()) * sizeof(Real)});
  ctx.points().append_seal_regions(r);
  return r;
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

} // namespace

SafeguardedStepper::SafeguardedStepper(PtatinContext& ctx,
                                       const SafeguardOptions& opts)
    : ctx_(ctx), opts_(opts), scrubber_(opts.scrub_every) {
  if (!opts_.checkpoint_dir.empty())
    rotation_ = std::make_unique<CheckpointRotation>(opts_.checkpoint_dir,
                                                     opts_.checkpoint_keep);
}

SafeguardedStepper::SafeguardedStepper(PtatinContext& ctx,
                                       const SolverConfig& config)
    : SafeguardedStepper(ctx, config.safeguard()) {}

void SafeguardedStepper::resume(const CheckpointMeta& meta) {
  step_index_ = static_cast<int>(meta.step);
  sim_time_ = meta.sim_time;
  dt_cap_ = meta.dt_cap > 0 ? meta.dt_cap
                            : std::numeric_limits<Real>::infinity();
}

void SafeguardedStepper::arm_seal() {
  state_seal_.arm(state_regions(ctx_));
  seal_epoch_ = ctx_.state_epoch();
  ++obs::SolverReport::global().sdc().seals_armed;
}

std::string SafeguardedStepper::verify_seal_on_reentry() {
  if (!state_seal_.armed()) return {};
  auto& metrics = obs::MetricsRegistry::instance();
  auto& sdc_report = obs::SolverReport::global().sdc();

  // A sanctioned out-of-band mutation (checkpoint restore, test setup wrote
  // through a mutable accessor) makes the seal stale, not the state corrupt.
  if (ctx_.state_epoch() != seal_epoch_) {
    state_seal_.disarm();
    return {};
  }

  const auto bad = state_seal_.verify(state_regions(ctx_));
  if (bad.empty()) return {};

  metrics.counter("sdc.detections").inc();
  ++sdc_report.detections;
  log_warn("sdc: state corruption detected at step ", step_index_,
           " boundary (", join_names(bad), ")");

  if (!last_good_.valid()) {
    metrics.counter("sdc.unrecovered").inc();
    ++sdc_report.unrecovered;
    return "sdc: state corrupted with no snapshot to heal from (" +
           join_names(bad) + ")";
  }
  // Heal: restore the snapshot the seal was armed over (bitwise-equal to the
  // sealed state, so the replayed trajectory matches a fault-free run), then
  // prove the restore actually took.
  last_good_.restore(ctx_);
  arm_seal();
  const auto still_bad = state_seal_.verify(state_regions(ctx_));
  if (!still_bad.empty()) {
    metrics.counter("sdc.unrecovered").inc();
    ++sdc_report.unrecovered;
    return "sdc: state corruption persisted through snapshot restore (" +
           join_names(still_bad) + ")";
  }
  metrics.counter("sdc.heals").inc();
  ++sdc_report.heals;
  log_warn("sdc: step ", step_index_,
           " state healed from the last good snapshot");
  return {};
}

std::string SafeguardedStepper::diagnose(const StepReport& report) const {
  if (report.nonlinear.failure != NonlinearFailure::kNone) {
    std::string msg =
        std::string("nonlinear: ") + to_string(report.nonlinear.failure);
    if (!report.nonlinear.failure_detail.empty())
      msg += " (" + report.nonlinear.failure_detail + ")";
    return msg;
  }
  // The energy solve reports through its linear stats, not the nonlinear
  // failure taxonomy; only its sentinel trip needs the safeguard tier.
  if (report.energy.linear.reason == ConvergedReason::kDivergedSdc)
    return "sdc: energy solve " + report.energy.linear.reason_message();
  if (opts_.check_fields &&
      (!all_finite(ctx_.velocity()) || !all_finite(ctx_.pressure()) ||
       !all_finite(ctx_.temperature())))
    return "non-finite values in solution fields";
  return {};
}

SafeguardedStepResult SafeguardedStepper::advance(Real dt) {
  auto& metrics = obs::MetricsRegistry::instance();
  SafeguardedStepResult res;

  // Cooperative preemption: yield at the step boundary before attempting
  // anything, publishing a boundary checkpoint so the run can resume later
  // bitwise-identically to one that was never interrupted.
  if (preempt_hook_ && preempt_hook_()) {
    res.preempted = true;
    if (rotation_) {
      CheckpointMeta meta;
      meta.step = step_index_;
      meta.sim_time = sim_time_;
      meta.dt_cap = std::isfinite(dt_cap_) ? dt_cap_ : 0.0;
      try {
        res.checkpoint_path = rotation_->save(ctx_, meta);
      } catch (const Error& e) {
        metrics.counter("checkpoint.save_failures").inc();
        log_warn("preempt: boundary checkpoint at step ", step_index_,
                 " failed (", e.what(), ")");
      }
    }
    metrics.counter("safeguard.preemptions").inc();
    return res;
  }

  ++step_index_;

  // Unrecoverable SDC exit: record the failure like an exhausted retry
  // sequence so telemetry shows why the run stopped.
  auto fail_now = [&](std::string failure) {
    res.failures.push_back(std::move(failure));
    metrics.counter("safeguard.step_failures").inc();
    metrics.counter("safeguard.unrecovered_steps").inc();
    state_seal_.disarm();
    if (auto& report = obs::SolverReport::global(); report.enabled()) {
      obs::SafeguardRecord rec;
      rec.step = step_index_;
      rec.recovered = false;
      rec.failures = res.failures;
      report.add_safeguard(std::move(rec));
    }
    return res;
  };

  // --- SDC boundary pass (docs/ROBUSTNESS.md) -------------------------------
  // Verify the state sealed at the end of the previous step before trusting
  // it again; a mismatch is healed in place from the last good snapshot.
  if (opts_.seal_state) {
    std::string sdc_failure = verify_seal_on_reentry();
    if (!sdc_failure.empty()) return fail_now(std::move(sdc_failure));
  }
  // Scrub the process-wide seal registry (setup-immutable operator data).
  // No snapshot covers those objects, so a mismatch is unrecoverable.
  if (scrubber_.enabled()) {
    const auto bad = scrubber_.scrub_if_due(step_index_);
    if (!bad.empty()) {
      metrics.counter("sdc.detections").inc();
      metrics.counter("sdc.unrecovered").inc();
      auto& sdc_report = obs::SolverReport::global().sdc();
      ++sdc_report.detections;
      ++sdc_report.unrecovered;
      return fail_now("sdc: setup-immutable object corrupted (" +
                      join_names(bad) + ")");
    }
  }

  dt = clamp_dt(dt);

  const bool checkpoint_due = rotation_ != nullptr &&
                              opts_.checkpoint_every > 0 &&
                              step_index_ % opts_.checkpoint_every == 0;
  const bool health_due =
      checkpoint_due ||
      (opts_.health_every > 0 && step_index_ % opts_.health_every == 0);

  // Snapshot for rollback. When the boundary pass just attested the live
  // state still matches last_good_, reuse that snapshot instead of
  // re-serializing the whole model state; otherwise capture fresh. A failed
  // capture (fault injection, OOM) degrades to an unguarded step rather
  // than refusing to advance.
  MemoryCheckpoint fresh_snapshot;
  MemoryCheckpoint* snapshot = &fresh_snapshot;
  if (opts_.seal_state && state_seal_.armed() && last_good_.valid()) {
    snapshot = &last_good_;
  } else {
    try {
      fresh_snapshot.capture(ctx_);
    } catch (const Error& e) {
      metrics.counter("safeguard.snapshot_failures").inc();
      log_warn("safeguard: state snapshot failed (", e.what(),
               ") — stepping without rollback protection");
    }
  }

  std::vector<Real> attempted_dts;
  bool dt_was_cut = false;
  for (int attempt = 0;; ++attempt) {
    res.dt_used = dt;
    attempted_dts.push_back(dt);
    std::string failure;
    bool transport_failure = false;
    bool sdc_failure = false;
    try {
      res.report = ctx_.step(dt);
      failure = diagnose(res.report);
      // Watchdog: never integrate past — or durably checkpoint — a state
      // that fails the health pass; a trip is handled exactly like a solver
      // failure (rollback + smaller dt).
      if (failure.empty() && health_due) {
        const HealthReport hr = check_health(ctx_, opts_.health);
        if (!hr.ok) failure = "health: " + hr.summary();
      }
    } catch (const transport::TransportError& e) {
      failure = std::string("transport: ") + e.what();
      transport_failure = true;
    } catch (const Error& e) {
      failure = std::string("exception: ") + e.what();
    }

    if (failure.empty()) {
      res.ok = true;
      res.retries = attempt;
      break;
    }

    metrics.counter("safeguard.step_failures").inc();
    if (transport_failure) metrics.counter("transport.step_failures").inc();
    sdc_failure = sdc::is_sdc_failure(failure);
    if (sdc_failure) {
      metrics.counter("sdc.detections").inc();
      ++obs::SolverReport::global().sdc().detections;
    }
    res.failures.push_back(failure);
    log_warn("safeguard: step ", step_index_, " attempt ", attempt + 1,
             " failed (", failure, ") at dt = ", dt);

    // Transport and SDC failures are infrastructure, not numerics: the retry
    // keeps the SAME dt (the restored snapshot replays the identical step,
    // preserving bitwise reproducibility) instead of cutting the step size.
    const bool same_dt_replay = transport_failure || sdc_failure;
    const Real dt_next = same_dt_replay ? dt : dt * opts_.dt_cut_factor;
    if (!snapshot->valid() || attempt >= opts_.max_retries ||
        !(dt_next > opts_.dt_min)) {
      res.retries = attempt;
      break; // unrecoverable: report failure to the caller
    }

    snapshot->restore(ctx_);
    metrics.counter("safeguard.rollbacks").inc();
    metrics.counter("safeguard.retries").inc();
    if (transport_failure) {
      ctx_.heal_transport();
    } else if (!same_dt_replay) {
      dt = dt_next;
      dt_was_cut = true;
      metrics.counter("safeguard.dt_cuts").inc();
    }
  }

  // Step-size recovery: a retried step leaves a cap at the dt that worked;
  // clean steps relax it geometrically until it disappears. (Transport-only
  // retries never cut dt, so they leave no cap behind.)
  if (res.ok && dt_was_cut) {
    dt_cap_ = res.dt_used;
  } else if (res.ok && std::isfinite(dt_cap_)) {
    dt_cap_ *= opts_.dt_grow_factor;
    if (dt_cap_ >= res.dt_used * opts_.dt_grow_factor)
      dt_cap_ = std::numeric_limits<Real>::infinity();
  }

  // A Krylov-sentinel trip (or any other sdc-classified failure) that a
  // same-dt replay recovered from is a completed heal; one that exhausted
  // the retry budget is unrecovered.
  if (std::any_of(res.failures.begin(), res.failures.end(),
                  [](const std::string& f) { return sdc::is_sdc_failure(f); })) {
    auto& sdc_report = obs::SolverReport::global().sdc();
    if (res.ok) {
      metrics.counter("sdc.heals").inc();
      ++sdc_report.heals;
    } else {
      metrics.counter("sdc.unrecovered").inc();
      ++sdc_report.unrecovered;
    }
  }

  if (res.ok) {
    sim_time_ += res.dt_used;
    if (checkpoint_due) {
      CheckpointMeta meta;
      meta.step = step_index_;
      meta.sim_time = sim_time_;
      meta.dt_cap = std::isfinite(dt_cap_) ? dt_cap_ : 0.0;
      try {
        res.checkpoint_path = rotation_->save(ctx_, meta);
      } catch (const Error& e) {
        // A failed save must not kill a healthy run: the previous rotation
        // entries are intact, so only durability of this instant is lost.
        metrics.counter("checkpoint.save_failures").inc();
        ++obs::SolverReport::global().state().checkpoint_save_failures;
        log_warn("checkpoint: save failed at step ", step_index_, " (",
                 e.what(), ") — continuing without this checkpoint");
      }
    }

    // Seal the now-quiescent model state until the next advance(). The
    // snapshot is captured first so the seal attests exactly the state the
    // heal would restore.
    if (opts_.seal_state) {
      try {
        last_good_.capture(ctx_);
        arm_seal();
      } catch (const Error& e) {
        state_seal_.disarm();
        metrics.counter("safeguard.snapshot_failures").inc();
        log_warn("sdc: post-step snapshot failed (", e.what(),
                 ") — state not sealed this step");
      }
      // Deterministic SDC injection AFTER sealing: a low-mantissa flip is
      // finite and physically plausible, so only the boundary verify of the
      // NEXT advance() (not this step's health pass) can catch it.
      if (state_seal_.armed()) {
        if (fault::fires("sdc.field_bitflip") && ctx_.velocity().size() > 0)
          const_cast<Vector&>(ctx_.velocity())[0] =
              sdc::flip_low_mantissa_bit(ctx_.velocity()[0]);
        // Const access + const_cast: going through the non-const points()
        // accessor would bump the state epoch and sanction the corruption.
        auto& pts = const_cast<MaterialPoints&>(
            static_cast<const PtatinContext&>(ctx_).points());
        if (fault::fires("sdc.particle_bitflip") && pts.size() > 0)
          pts.plastic_strain(0) =
              sdc::flip_low_mantissa_bit(pts.plastic_strain(0));
      }
    }
  } else {
    // An unrecoverable step leaves the state at the failed attempt; the
    // seal no longer describes it.
    state_seal_.disarm();
  }

  if (auto& report = obs::SolverReport::global(); report.enabled()) {
    if (!res.ok || res.retries > 0) {
      obs::SafeguardRecord rec;
      rec.step = step_index_;
      rec.recovered = res.ok;
      rec.retries = res.retries;
      // The actual attempted dt sequence (transport retries repeat a dt, so
      // it cannot be reconstructed from the cut factor alone).
      rec.dt_history = attempted_dts;
      rec.failures = res.failures;
      report.add_safeguard(std::move(rec));
    }
    if (res.ok) {
      obs::PopulationRecord pr;
      pr.step = step_index_;
      pr.injected = res.report.population.injected;
      pr.removed = res.report.population.removed;
      pr.deficient = res.report.population.deficient_elements;
      pr.min_per_cell = res.report.population.min_per_cell;
      pr.max_per_cell = res.report.population.max_per_cell;
      report.add_population(pr);
    }
  }
  if (!res.ok) metrics.counter("safeguard.unrecovered_steps").inc();
  return res;
}

} // namespace ptatin
