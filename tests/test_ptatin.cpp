// Integration tests for the top-level pTatin3D driver: model setup,
// coefficient pipeline, full time steps on the sinker and rifting models,
// and VTK output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ptatin/context.hpp"
#include "ptatin/models_rifting.hpp"
#include "ptatin/models_sinker.hpp"
#include "ptatin/vtk.hpp"
#include "stokes/fields.hpp"

namespace ptatin {
namespace {

PtatinOptions fast_options() {
  PtatinOptions o;
  o.points_per_dim = 2;
  o.nonlinear.max_it = 3;
  o.nonlinear.rtol = 1e-2;
  o.nonlinear.linear.gmg.levels = 2;
  o.nonlinear.linear.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  o.nonlinear.linear.coarse_bjacobi_blocks = 1;
  o.nonlinear.linear.krylov.max_it = 300;
  return o;
}

// --- sinker model ----------------------------------------------------------------

TEST(SinkerModel, SpheresDoNotIntersect) {
  SinkerParams p;
  p.num_spheres = 8;
  p.radius = 0.1;
  auto centers = sinker_sphere_centers(p);
  ASSERT_EQ(centers.size(), 8u);
  for (std::size_t i = 0; i < centers.size(); ++i)
    for (std::size_t j = i + 1; j < centers.size(); ++j) {
      Real d2 = 0;
      for (int d = 0; d < 3; ++d)
        d2 += (centers[i][d] - centers[j][d]) * (centers[i][d] - centers[j][d]);
      EXPECT_GT(std::sqrt(d2), 2 * p.radius);
    }
}

TEST(SinkerModel, CoefficientsReflectContrast) {
  SinkerParams p;
  p.mx = p.my = p.mz = 8;
  p.contrast = 1e4;
  StructuredMesh mesh =
      StructuredMesh::box(p.mx, p.my, p.mz, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients c = sinker_coefficients(mesh, p);
  EXPECT_NEAR(c.eta_min(), 1e-4, 1e-10);
  EXPECT_NEAR(c.eta_max(), 1.0, 1e-10);
}

TEST(SinkerModel, SphereSinksOverOneStep) {
  SinkerParams p;
  p.mx = p.my = p.mz = 4;
  p.num_spheres = 1;
  p.radius = 0.2;
  p.contrast = 1e2;
  ModelSetup setup = make_sinker_model(p);
  PtatinOptions opts = fast_options();
  opts.update_mesh = false; // keep the mesh fixed for this check
  PtatinContext ctx(std::move(setup), opts);

  StepReport rep = ctx.step(0.01);
  EXPECT_GT(rep.nonlinear.total_krylov_iterations, 0);

  // Mean vertical velocity of sphere material points is negative (sinking).
  Real wsum = 0;
  Index count = 0;
  const auto& pts = ctx.points();
  for (Index i = 0; i < pts.size(); ++i) {
    if (pts.lithology(i) != 1 || pts.element(i) < 0) continue;
    const Vec3 v = interpolate_velocity(ctx.mesh(), ctx.velocity(),
                                        pts.element(i), pts.local_coord(i));
    wsum += v[2];
    ++count;
  }
  ASSERT_GT(count, 0);
  EXPECT_LT(wsum / Real(count), 0.0);
}

TEST(SinkerModel, MultiStepRunRemainsStable) {
  SinkerParams p;
  p.mx = p.my = p.mz = 4;
  p.num_spheres = 2;
  p.radius = 0.15;
  p.contrast = 1e2;
  ModelSetup setup = make_sinker_model(p);
  PtatinContext ctx(std::move(setup), fast_options());

  const Index n0 = ctx.points().size();
  for (int s = 0; s < 3; ++s) {
    const Real dt = std::min(Real(0.01), ctx.suggest_dt(0.25));
    StepReport rep = ctx.step(dt);
    EXPECT_GT(rep.ale.min_detj_after, 0.0) << "mesh tangled at step " << s;
  }
  // Population control keeps the point count in a sane band.
  EXPECT_GT(ctx.points().size(), n0 / 2);
  EXPECT_LT(ctx.points().size(), n0 * 4);
}

// --- coefficient pipeline -----------------------------------------------------------

TEST(Pipeline, ProjectedViscosityIsBoundedByMaterials) {
  SinkerParams p;
  p.mx = p.my = p.mz = 4;
  p.contrast = 1e3;
  ModelSetup setup = make_sinker_model(p);
  PtatinOptions opts = fast_options();
  PtatinContext ctx(std::move(setup), opts);

  QuadCoefficients coeff(ctx.mesh().num_elements());
  Vector u(num_velocity_dofs(ctx.mesh()), 0.0);
  Vector pr(num_pressure_dofs(ctx.mesh()), 0.0);
  update_coefficients_from_points(ctx.mesh(), ctx.setup().materials,
                                  ctx.points(), u, pr, nullptr, false,
                                  CoefficientPipelineOptions{}, coeff);
  EXPECT_GE(coeff.eta_min(), 1e-3 - 1e-12);
  EXPECT_LE(coeff.eta_max(), 1.0 + 1e-12);
}

TEST(Pipeline, NewtonTermsFilled) {
  SinkerParams p;
  p.mx = p.my = p.mz = 2;
  ModelSetup setup = make_sinker_model(p);
  PtatinContext ctx(std::move(setup), fast_options());
  QuadCoefficients coeff(ctx.mesh().num_elements());
  Vector u(num_velocity_dofs(ctx.mesh()), 0.0);
  // Nonzero velocity so D0 is nonzero.
  for (Index n = 0; n < ctx.mesh().num_nodes(); ++n)
    u[3 * n + 0] = ctx.mesh().node_coord(n)[1];
  Vector pr(num_pressure_dofs(ctx.mesh()), 0.0);
  update_coefficients_from_points(ctx.mesh(), ctx.setup().materials,
                                  ctx.points(), u, pr, nullptr, true,
                                  CoefficientPipelineOptions{}, coeff);
  ASSERT_TRUE(coeff.has_newton());
  // D0 = strain of u: the xy component is 1/2 everywhere.
  EXPECT_NEAR(coeff.d0(0, 0)[3], 0.5, 1e-9);
}

// --- rifting model ----------------------------------------------------------------

TEST(RiftingModel, LithologyLayering) {
  RiftingParams p;
  p.mx = 8;
  p.my = 4;
  p.mz = 4;
  ModelSetup setup = make_rifting_model(p);
  EXPECT_EQ(setup.materials.size(), 3);
  EXPECT_EQ(setup.lithology_of({1.0, 0.1, 0.5}), 0); // mantle
  EXPECT_EQ(setup.lithology_of({1.0, 0.85, 0.5}), 1); // weak crust
  EXPECT_EQ(setup.lithology_of({1.0, 0.95, 0.5}), 2); // strong crust
  EXPECT_TRUE(setup.use_energy);
}

TEST(RiftingModel, DamageConfinedToSeedZone) {
  RiftingParams p;
  ModelSetup setup = make_rifting_model(p);
  ASSERT_TRUE(setup.initial_damage != nullptr);
  // Inside the seed zone (center x, crust depth, near back face).
  int nonzero = 0;
  for (int t = 0; t < 20; ++t) {
    const Real d = setup.initial_damage({3.0, 0.95, 0.1});
    if (d > 0) ++nonzero;
    EXPECT_LE(d, p.damage_amplitude);
  }
  EXPECT_GT(nonzero, 0);
  EXPECT_DOUBLE_EQ(setup.initial_damage({0.5, 0.95, 0.1}), 0.0); // far in x
  EXPECT_DOUBLE_EQ(setup.initial_damage({3.0, 0.5, 0.1}), 0.0);  // mantle
  EXPECT_DOUBLE_EQ(setup.initial_damage({3.0, 0.95, 2.5}), 0.0); // front
}

TEST(RiftingModel, ExtensionBoundaryValues) {
  RiftingParams p;
  p.mx = 4;
  p.my = 2;
  p.mz = 2;
  p.extension_rate = 1.0;
  ModelSetup setup = make_rifting_model(p);
  Vector u(num_velocity_dofs(setup.mesh), 0.0);
  setup.bc.set_values(u);
  const Index left = setup.mesh.node_index(0, 2, 2);
  const Index right = setup.mesh.node_index(setup.mesh.nx() - 1, 2, 2);
  EXPECT_DOUBLE_EQ(u[3 * left + 0], -1.0);
  EXPECT_DOUBLE_EQ(u[3 * right + 0], 1.0);
}

TEST(RiftingModel, OneTimeStepRuns) {
  RiftingParams p;
  p.mx = 8;
  p.my = 4;
  p.mz = 4;
  ModelSetup setup = make_rifting_model(p);
  PtatinOptions opts = fast_options();
  opts.ale.vertical_axis = 1;
  opts.nonlinear.max_it = 2;
  PtatinContext ctx(std::move(setup), opts);

  StepReport rep = ctx.step(0.005);
  EXPECT_GT(rep.nonlinear.total_krylov_iterations, 0);
  EXPECT_GT(rep.ale.min_detj_after, 0.0);
  // Temperature stays within the imposed bounds.
  for (Index v = 0; v < ctx.mesh().num_vertices(); ++v) {
    EXPECT_GT(ctx.temperature()[v], -0.2);
    EXPECT_LT(ctx.temperature()[v], 1.2);
  }
}

// --- VTK -----------------------------------------------------------------------

TEST(Vtk, StructuredFileWellFormed) {
  SinkerParams p;
  p.mx = p.my = p.mz = 2;
  StructuredMesh mesh =
      StructuredMesh::box(p.mx, p.my, p.mz, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = sinker_coefficients(mesh, p);
  Vector u(num_velocity_dofs(mesh), 1.0);
  Vector pr(num_pressure_dofs(mesh), 2.0);
  const std::string path = "/tmp/pt_test_structured.vtk";
  write_vtk_structured(path, mesh, u, pr, &coeff);

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "# vtk DataFile Version 3.0");
  std::string all((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("DIMENSIONS 5 5 5"), std::string::npos);
  EXPECT_NE(all.find("VECTORS velocity double"), std::string::npos);
  EXPECT_NE(all.find("SCALARS viscosity double 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, PointsFileWellFormed) {
  MaterialPoints pts;
  pts.add({0.1, 0.2, 0.3}, 1, 0.5);
  pts.add({0.4, 0.5, 0.6}, 0, 0.0);
  const std::string path = "/tmp/pt_test_points.vtk";
  write_vtk_points(path, pts);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string all((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("POINTS 2 double"), std::string::npos);
  EXPECT_NE(all.find("SCALARS lithology int 1"), std::string::npos);
  EXPECT_NE(all.find("SCALARS plastic_strain double 1"), std::string::npos);
  std::remove(path.c_str());
}

} // namespace
} // namespace ptatin
