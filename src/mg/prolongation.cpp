#include "mg/prolongation.hpp"

#include "common/error.hpp"
#include "fem/dofmap.hpp"

namespace ptatin {

CsrMatrix build_velocity_prolongation(const StructuredMesh& fine,
                                      const StructuredMesh& coarse,
                                      const DirichletBc* fine_bc) {
  PT_ASSERT(fine.mx() == 2 * coarse.mx() && fine.my() == 2 * coarse.my() &&
            fine.mz() == 2 * coarse.mz());

  const Index nf = num_velocity_dofs(fine);
  const Index nc = num_velocity_dofs(coarse);

  std::vector<Index> rp(nf + 1, 0);
  std::vector<Index> ci;
  std::vector<Real> va;
  ci.reserve(nf * 4);
  va.reserve(nf * 4);

  for (Index k = 0; k < fine.nz(); ++k)
    for (Index j = 0; j < fine.ny(); ++j)
      for (Index i = 0; i < fine.nx(); ++i) {
        // Per-dimension stencils (coarse lattice index, weight).
        Index idx[3][2];
        Real wgt[3][2];
        int cnt[3];
        const Index fidx[3] = {i, j, k};
        const Index cmax[3] = {coarse.nx() - 1, coarse.ny() - 1,
                               coarse.nz() - 1};
        for (int d = 0; d < 3; ++d) {
          const Index h = fidx[d] / 2;
          if (fidx[d] % 2 == 0) {
            idx[d][0] = h;
            wgt[d][0] = 1.0;
            cnt[d] = 1;
          } else {
            idx[d][0] = h;
            idx[d][1] = h + 1;
            wgt[d][0] = wgt[d][1] = 0.5;
            cnt[d] = 2;
            PT_DEBUG_ASSERT(h + 1 <= cmax[d]);
          }
        }

        const Index fnode = fine.node_index(i, j, k);
        for (int c = 0; c < 3; ++c) {
          const Index row = velocity_dof(fnode, c);
          const bool constrained =
              fine_bc != nullptr && fine_bc->is_constrained(row);
          if (!constrained) {
            // Accumulate entries in increasing coarse-dof order: iterate
            // z, y, x stencils; coarse node index grows with each lattice
            // coordinate so ordering is naturally sorted.
            for (int cz = 0; cz < cnt[2]; ++cz)
              for (int cy = 0; cy < cnt[1]; ++cy)
                for (int cx = 0; cx < cnt[0]; ++cx) {
                  const Index cn =
                      coarse.node_index(idx[0][cx], idx[1][cy], idx[2][cz]);
                  ci.push_back(velocity_dof(cn, c));
                  va.push_back(wgt[0][cx] * wgt[1][cy] * wgt[2][cz]);
                }
          }
          rp[row + 1] = static_cast<Index>(ci.size());
        }
      }

  // Convert per-row end markers to prefix form (rows were filled in
  // increasing dof order: dof = 3*node + c and nodes iterate in order).
  for (Index r = 0; r < nf; ++r)
    if (rp[r + 1] < rp[r]) rp[r + 1] = rp[r];
  return CsrMatrix(nf, nc, std::move(rp), std::move(ci), std::move(va));
}

} // namespace ptatin
