#include "ksp/eig_estimate.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace ptatin {

Real estimate_lambda_max_jacobi(const LinearOperator& a, const Vector& inv_diag,
                                int iterations) {
  const Index n = a.rows();
  PT_ASSERT(inv_diag.size() == n);
  Vector v(n), w(n);

  // Deterministic pseudo-random start vector excites all modes reproducibly.
  Rng rng(0xC0FFEEull);
  for (Index i = 0; i < n; ++i) v[i] = rng.uniform(-1.0, 1.0);
  Real vnorm = v.norm2();
  PT_ASSERT(vnorm > 0.0);
  v.scale(Real(1) / vnorm);

  Real lambda = 0.0;
  const Real* idg = inv_diag.data();
  for (int k = 0; k < iterations; ++k) {
    a.apply(v, w);
    Real* wp = w.data();
    parallel_for(n, [&](Index i) { wp[i] *= idg[i]; });
    lambda = w.norm2(); // Rayleigh-style growth factor for the unit vector v
    if (!(lambda > 0.0)) return 0.0;
    v.copy_from(w);
    v.scale(Real(1) / lambda);
  }
  return lambda;
}

} // namespace ptatin
