#include "ksp/gmres.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"

namespace ptatin {

namespace {

/// Shared implementation of right-preconditioned (F)GMRES(m).
/// When `flexible` is true, the preconditioned vectors Z_j are stored and the
/// solution update uses Z (FGMRES, Saad '93); otherwise the update is
/// x += M^{-1} (V y), valid only for a fixed (linear) preconditioner.
SolveStats gmres_impl(const LinearOperator& a, const Preconditioner& pc,
                      const Vector& b, Vector& x, const KrylovSettings& s,
                      bool flexible) {
  PerfScope span(flexible ? "KSPSolve(FGMRES)" : "KSPSolve(GMRES)");
  SolveStats stats;
  const Index n = b.size();
  if (x.size() != n) x.resize(n);
  const int m = std::max(1, s.restart);

  std::vector<Vector> V(m + 1);
  std::vector<Vector> Z(flexible ? m : 0);
  // Hessenberg in column-major (j-th column has j+2 entries).
  std::vector<std::vector<Real>> H(m, std::vector<Real>(m + 1, 0.0));
  std::vector<Real> cs(m), sn(m), g(m + 1);

  Vector r(n), w(n), ztmp(n);
  a.residual(b, x, r);
  Real rnorm = r.norm2();
  stats.initial_residual = rnorm;
  const Real target = std::max(s.atol, s.rtol * rnorm);
  if (s.record_history) stats.history.push_back(rnorm);
  if (s.monitor) s.monitor(0, rnorm, &r);

  int total_it = 0;
  while (total_it < s.max_it && rnorm > target) {
    // --- start (restart) cycle ---
    V[0].copy_from(r);
    V[0].scale(Real(1) / rnorm);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = rnorm;

    int j = 0;
    for (; j < m && total_it < s.max_it; ++j, ++total_it) {
      // w = A M^{-1} v_j
      if (flexible) {
        pc.apply(V[j], Z[j]);
        a.apply(Z[j], w);
      } else {
        pc.apply(V[j], ztmp);
        a.apply(ztmp, w);
      }
      // Modified Gram–Schmidt.
      for (int i = 0; i <= j; ++i) {
        H[j][i] = w.dot(V[i]);
        w.axpy(-H[j][i], V[i]);
      }
      H[j][j + 1] = w.norm2();
      if (V[j + 1].size() != n) V[j + 1].resize(n);
      if (H[j][j + 1] > 0.0) {
        V[j + 1].copy_from(w);
        V[j + 1].scale(Real(1) / H[j][j + 1]);
      }

      // Apply accumulated Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const Real t = cs[i] * H[j][i] + sn[i] * H[j][i + 1];
        H[j][i + 1] = -sn[i] * H[j][i] + cs[i] * H[j][i + 1];
        H[j][i] = t;
      }
      // New rotation to annihilate H[j][j+1].
      const Real denom = std::hypot(H[j][j], H[j][j + 1]);
      PT_ASSERT_MSG(denom > 0.0, "GMRES breakdown: zero Hessenberg column");
      cs[j] = H[j][j] / denom;
      sn[j] = H[j][j + 1] / denom;
      H[j][j] = denom;
      H[j][j + 1] = 0.0;
      g[j + 1] = -sn[j] * g[j];
      g[j] = cs[j] * g[j];

      rnorm = std::abs(g[j + 1]);
      if (s.record_history) stats.history.push_back(rnorm);
      if (s.monitor) s.monitor(total_it + 1, rnorm, nullptr);
      if (rnorm <= target) {
        ++j;
        ++total_it;
        break;
      }
    }

    // Solve the j x j triangular system H y = g.
    std::vector<Real> y(j, 0.0);
    for (int i = j - 1; i >= 0; --i) {
      Real sum = g[i];
      for (int k = i + 1; k < j; ++k) sum -= H[k][i] * y[k];
      y[i] = sum / H[i][i];
    }
    // Update solution.
    if (flexible) {
      for (int i = 0; i < j; ++i) x.axpy(y[i], Z[i]);
    } else {
      // x += M^{-1} (V y)
      w.resize(n);
      w.set_all(0.0);
      for (int i = 0; i < j; ++i) w.axpy(y[i], V[i]);
      pc.apply(w, ztmp);
      x.axpy(1.0, ztmp);
    }

    a.residual(b, x, r);
    rnorm = r.norm2();
  }

  stats.iterations = total_it;
  stats.final_residual = rnorm;
  stats.converged = rnorm <= target;
  stats.reason = stats.converged ? "rtol" : "max_it";
  auto& metrics = obs::MetricsRegistry::instance();
  metrics.counter(flexible ? "ksp.fgmres.solves" : "ksp.gmres.solves").inc();
  metrics.counter(flexible ? "ksp.fgmres.iterations" : "ksp.gmres.iterations")
      .inc(total_it);
  return stats;
}

} // namespace

SolveStats gmres_solve(const LinearOperator& a, const Preconditioner& pc,
                       const Vector& b, Vector& x, const KrylovSettings& s) {
  return gmres_impl(a, pc, b, x, s, /*flexible=*/false);
}

SolveStats fgmres_solve(const LinearOperator& a, const Preconditioner& pc,
                        const Vector& b, Vector& x, const KrylovSettings& s) {
  return gmres_impl(a, pc, b, x, s, /*flexible=*/true);
}

} // namespace ptatin
