// Content digest for the serve result cache (docs/SERVICE.md).
//
// Jobs are keyed by an FNV-1a 64-bit hash of their canonical resolved
// serialization (JobSpec::canonical_json). FNV-1a is not cryptographic — the
// cache defends against accidental collisions of distinct configs, not
// adversarial ones — but it is stable across platforms and trivially
// reimplementable by external tooling that wants to predict a job's key.
#pragma once

#include <cstdint>
#include <string>

namespace ptatin::serve {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a64(const std::string& s,
                             std::uint64_t h = kFnvOffset) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// 16 lowercase hex digits, fixed width (usable as a filename stem).
inline std::string hex64(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[std::size_t(i)] = kHex[v & 0xF];
    v >>= 4;
  }
  return out;
}

inline std::string digest_string(const std::string& s) {
  return hex64(fnv1a64(s));
}

} // namespace ptatin::serve
