// Unit tests for geometric multigrid: prolongation properties, V-cycle
// convergence, Galerkin vs rediscretized coarse operators.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ksp/gcr.hpp"
#include "mg/gmg.hpp"

namespace ptatin {
namespace {

QuadCoefficients constant_coeff(const StructuredMesh& mesh, Real eta) {
  QuadCoefficients c(mesh.num_elements());
  for (Index e = 0; e < mesh.num_elements(); ++e)
    for (int q = 0; q < kQuadPerEl; ++q) c.eta(e, q) = eta;
  return c;
}

QuadCoefficients sinker_coeff(const StructuredMesh& mesh, Real contrast) {
  // One viscous sphere in the center of the unit box.
  QuadCoefficients c(mesh.num_elements());
  for (Index e = 0; e < mesh.num_elements(); ++e) {
    ElementGeometry g;
    element_geometry(mesh, e, g);
    for (int q = 0; q < kQuadPerEl; ++q) {
      const Real dx = g.xq[q][0] - 0.5, dy = g.xq[q][1] - 0.5,
                 dz = g.xq[q][2] - 0.5;
      const bool inside = dx * dx + dy * dy + dz * dz < 0.25 * 0.25;
      c.eta(e, q) = inside ? 1.0 : 1.0 / contrast;
      c.rho(e, q) = inside ? 1.2 : 1.0;
    }
  }
  return c;
}

CoarseSolverFactory lu_coarse_factory() {
  return [](const CsrMatrix& a) -> std::unique_ptr<Preconditioner> {
    return std::make_unique<BlockJacobiPc>(a, 1, SubdomainSolve::kLu);
  };
}

BcFactory sinker_bc_factory() {
  return [](const StructuredMesh& m) { return sinker_boundary_conditions(m); };
}

// --- prolongation ------------------------------------------------------------

TEST(Prolongation, ReproducesConstants) {
  StructuredMesh fine = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  StructuredMesh coarse = fine.coarsen();
  CsrMatrix P = build_velocity_prolongation(fine, coarse, nullptr);
  Vector xc(num_velocity_dofs(coarse), 1.0), xf;
  P.mult(xc, xf);
  for (Index i = 0; i < xf.size(); ++i) EXPECT_NEAR(xf[i], 1.0, 1e-14);
}

TEST(Prolongation, ReproducesLinearFieldsOnUniformMesh) {
  StructuredMesh fine = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 2, 3});
  StructuredMesh coarse = fine.coarsen();
  CsrMatrix P = build_velocity_prolongation(fine, coarse, nullptr);
  Vector xc(num_velocity_dofs(coarse), 0.0), xf;
  for (Index n = 0; n < coarse.num_nodes(); ++n) {
    const Vec3 x = coarse.node_coord(n);
    xc[3 * n + 0] = 2 * x[0] - x[1];
    xc[3 * n + 1] = x[2];
    xc[3 * n + 2] = x[0] + x[1] + x[2];
  }
  P.mult(xc, xf);
  for (Index n = 0; n < fine.num_nodes(); ++n) {
    const Vec3 x = fine.node_coord(n);
    EXPECT_NEAR(xf[3 * n + 0], 2 * x[0] - x[1], 1e-13);
    EXPECT_NEAR(xf[3 * n + 1], x[2], 1e-13);
    EXPECT_NEAR(xf[3 * n + 2], x[0] + x[1] + x[2], 1e-13);
  }
}

TEST(Prolongation, InjectionRowsHaveSingleUnitEntry) {
  StructuredMesh fine = StructuredMesh::box(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  StructuredMesh coarse = fine.coarsen();
  CsrMatrix P = build_velocity_prolongation(fine, coarse, nullptr);
  // Fine node (2,2,2) is coarse node (1,1,1): weight 1, single entry.
  const Index row = 3 * fine.node_index(2, 2, 2);
  EXPECT_EQ(P.row_ptr()[row + 1] - P.row_ptr()[row], 1);
  EXPECT_DOUBLE_EQ(*P.find(row, 3 * coarse.node_index(1, 1, 1)), 1.0);
}

TEST(Prolongation, ConstrainedFineRowsAreZero) {
  StructuredMesh fine = StructuredMesh::box(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  StructuredMesh coarse = fine.coarsen();
  DirichletBc bc = sinker_boundary_conditions(fine);
  CsrMatrix P = build_velocity_prolongation(fine, coarse, &bc);
  for (Index dof : bc.constrained_dofs())
    EXPECT_EQ(P.row_ptr()[dof + 1] - P.row_ptr()[dof], 0) << "dof " << dof;
}

TEST(Prolongation, WeightsArePartitionOfUnityOnInteriorRows) {
  StructuredMesh fine = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  StructuredMesh coarse = fine.coarsen();
  CsrMatrix P = build_velocity_prolongation(fine, coarse, nullptr);
  for (Index r = 0; r < P.rows(); ++r) {
    Real sum = 0;
    for (Index k = P.row_ptr()[r]; k < P.row_ptr()[r + 1]; ++k)
      sum += P.values()[k];
    EXPECT_NEAR(sum, 1.0, 1e-14);
  }
}

// --- GMG V-cycle --------------------------------------------------------------

TEST(Gmg, VcycleReducesResidual) {
  StructuredMesh mesh = StructuredMesh::box(8, 8, 8, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = constant_coeff(mesh, 1.0);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  GmgOptions opts;
  opts.levels = 3;
  GmgHierarchy mg(mesh, coeff, bc, opts, sinker_bc_factory(),
                  lu_coarse_factory());

  const auto& A = mg.fine_operator();
  Rng rng(1);
  Vector b(A.rows(), 0.0);
  for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  bc.zero_constrained(b);

  Vector x(A.rows(), 0.0);
  Vector r;
  A.residual(b, x, r);
  const Real r0 = r.norm2();
  mg.vcycle(b, x);
  A.residual(b, x, r);
  const Real r1 = r.norm2();
  mg.vcycle(b, x);
  A.residual(b, x, r);
  const Real r2 = r.norm2();
  EXPECT_LT(r1, 0.25 * r0); // healthy V-cycle contraction
  EXPECT_LT(r2, 0.25 * r1);
}

TEST(Gmg, PreconditionedSolveConvergesFast) {
  StructuredMesh mesh = StructuredMesh::box(8, 8, 8, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = sinker_coeff(mesh, 1e2);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  GmgOptions opts;
  opts.levels = 2;
  GmgHierarchy mg(mesh, coeff, bc, opts, sinker_bc_factory(),
                  lu_coarse_factory());

  const auto& A = mg.fine_operator();
  Rng rng(2);
  Vector b(A.rows(), 0.0);
  for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  bc.zero_constrained(b);

  Vector x;
  KrylovSettings s;
  s.rtol = 1e-8;
  s.max_it = 60;
  SolveStats st = gcr_solve(A, mg, b, x, s);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(st.iterations, 40);
}

TEST(Gmg, IterationCountRoughlyMeshIndependent) {
  auto iterations_for = [&](Index m, int levels) {
    StructuredMesh mesh = StructuredMesh::box(m, m, m, {0, 0, 0}, {1, 1, 1});
    QuadCoefficients coeff = constant_coeff(mesh, 1.0);
    DirichletBc bc = sinker_boundary_conditions(mesh);
    GmgOptions opts;
    opts.levels = levels;
    GmgHierarchy mg(mesh, coeff, bc, opts, sinker_bc_factory(),
                    lu_coarse_factory());
    const auto& A = mg.fine_operator();
    Rng rng(3);
    Vector b(A.rows(), 0.0);
    for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
    bc.zero_constrained(b);
    Vector x;
    KrylovSettings s;
    s.rtol = 1e-8;
    s.max_it = 100;
    return gcr_solve(A, mg, b, x, s).iterations;
  };
  const int it_small = iterations_for(4, 2);
  const int it_large = iterations_for(8, 3);
  EXPECT_LE(it_large, it_small + 10); // no blow-up with resolution
}

TEST(Gmg, GalerkinAndRediscretizedBothConverge) {
  StructuredMesh mesh = StructuredMesh::box(8, 8, 8, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = sinker_coeff(mesh, 1e3);
  DirichletBc bc = sinker_boundary_conditions(mesh);

  auto run = [&](CoarseOperatorType ct) {
    GmgOptions opts;
    opts.levels = 3;
    opts.coarse_type = ct;
    GmgHierarchy mg(mesh, coeff, bc, opts, sinker_bc_factory(),
                    lu_coarse_factory());
    const auto& A = mg.fine_operator();
    Rng rng(4);
    Vector b(A.rows(), 0.0);
    for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
    bc.zero_constrained(b);
    Vector x;
    KrylovSettings s;
    s.rtol = 1e-6;
    s.max_it = 120;
    return gcr_solve(A, mg, b, x, s);
  };

  SolveStats gal = run(CoarseOperatorType::kGalerkin);
  SolveStats red = run(CoarseOperatorType::kRediscretized);
  EXPECT_TRUE(gal.converged);
  EXPECT_TRUE(red.converged);
  // Galerkin is the more robust option (§III-C).
  EXPECT_LE(gal.iterations, red.iterations + 10);
}

TEST(Gmg, MatrixFreeAndAssembledFinestAgree) {
  // The preconditioner quality must be identical regardless of the finest
  // back-end: same math, different kernels.
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = sinker_coeff(mesh, 1e2);
  DirichletBc bc = sinker_boundary_conditions(mesh);

  auto iterations = [&](FineOperatorType ft) {
    GmgOptions opts;
    opts.levels = 2;
    opts.fine_kernel.type = ft;
    GmgHierarchy mg(mesh, coeff, bc, opts, sinker_bc_factory(),
                    lu_coarse_factory());
    const auto& A = mg.fine_operator();
    Rng rng(5);
    Vector b(A.rows(), 0.0);
    for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
    bc.zero_constrained(b);
    Vector x;
    KrylovSettings s;
    s.rtol = 1e-8;
    s.max_it = 100;
    return gcr_solve(A, mg, b, x, s).iterations;
  };

  // All matrix-free back-ends share the same (rediscretized) coarse
  // construction: identical preconditioners, identical iteration counts.
  const int mf = iterations(FineOperatorType::kMatrixFree);
  const int tens = iterations(FineOperatorType::kTensor);
  const int tensc = iterations(FineOperatorType::kTensorC);
  EXPECT_EQ(tens, mf);
  EXPECT_EQ(tensc, mf);
  // An assembled finest level upgrades the coarse operator to the true
  // Galerkin product — at least as good (the GMG-ii effect of Table IV).
  const int asmb = iterations(FineOperatorType::kAssembled);
  EXPECT_LE(asmb, tens);
}

TEST(Gmg, SingleLevelDegeneratesToSmoother) {
  StructuredMesh mesh = StructuredMesh::box(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = constant_coeff(mesh, 1.0);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  GmgOptions opts;
  opts.levels = 1;
  GmgHierarchy mg(mesh, coeff, bc, opts, sinker_bc_factory(), nullptr);
  const auto& A = mg.fine_operator();
  Vector b(A.rows(), 1.0);
  bc.zero_constrained(b);
  Vector z;
  mg.apply(b, z);
  Vector r;
  A.residual(b, z, r);
  EXPECT_LT(r.norm2(), b.norm2());
}

} // namespace
} // namespace ptatin
