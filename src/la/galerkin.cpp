#include "la/galerkin.hpp"

#include <atomic>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ptatin {

namespace {

/// Numeric-only SpGEMM replay: write multiply(a, b)'s values into c, whose
/// pattern is the cached multiply(a, b) pattern. The scatter order and the
/// first-touch `=` / subsequent `+=` accumulator semantics mirror
/// CsrMatrix::multiply exactly (including its `av == 0.0` pruning), so the
/// values are bitwise identical to the from-scratch product.
///
/// Because of that pruning, the product's PATTERN depends on a's zero-set,
/// which drifts across re-assemblies (near-cancellation entries wobble
/// between 1e-19 and exact 0.0). Rather than invalidating on any zero flip
/// — which would reject essentially every real refresh — the replay verifies
/// the pattern on the fly: per row, the number of scattered columns must
/// equal the cached row length and every cached column must have been
/// touched (together: touched set == cached set, exactly). Returns false on
/// any mismatch, in which case c's values are garbage and the caller must
/// run a full setup.
bool multiply_numeric(const CsrMatrix& a, const CsrMatrix& b, CsrMatrix& c) {
  PT_ASSERT(a.cols() == b.rows());
  PT_ASSERT(c.rows() == a.rows() && c.cols() == b.cols());
  const Index m = a.rows();
  const Index n = b.cols();
  const Index* arp = a.row_ptr().data();
  const Index* aci = a.col_idx().data();
  const Real* ava = a.values().data();
  const Index* brp = b.row_ptr().data();
  const Index* bci = b.col_idx().data();
  const Real* bva = b.values().data();
  const Index* crp = c.row_ptr().data();
  const Index* cci = c.col_idx().data();
  Real* cva = c.values().data();

  // Same dynamic row-block dispenser as CsrMatrix::multiply: rows vary in
  // fill, and the identical code drives both the OpenMP team and the TSan
  // std::thread team.
  constexpr Index kRowBlock = 64;
  std::atomic<Index> next_row{0};
  std::atomic<bool> ok{true};
  parallel_team([&](int, int) {
    // Value and marker fused into one slot so each random column access in
    // the scatter touches a single cache line — the replay is scatter-bound,
    // and the layout changes nothing about the FP sequence.
    struct Slot {
      Real value;
      Index marker;
    };
    std::vector<Slot> acc(static_cast<std::size_t>(n), Slot{0.0, -1});
    for (Index blk = next_row.fetch_add(kRowBlock, std::memory_order_relaxed);
         blk < m;
         blk = next_row.fetch_add(kRowBlock, std::memory_order_relaxed)) {
      if (!ok.load(std::memory_order_relaxed)) return;
      const Index blk_end = std::min<Index>(m, blk + kRowBlock);
      for (Index i = blk; i < blk_end; ++i) {
        Index touched = 0;
        for (Index ka = arp[i]; ka < arp[i + 1]; ++ka) {
          const Index k = aci[ka];
          const Real av = ava[ka];
          if (av == 0.0) continue;
          for (Index kb = brp[k]; kb < brp[k + 1]; ++kb) {
            const Real v = av * bva[kb];
            Slot& s = acc[bci[kb]];
            if (s.marker != i) {
              s.marker = i;
              s.value = v;
              ++touched;
            } else {
              s.value += v;
            }
          }
        }
        // A column outside the cached pattern was scattered (pattern grew):
        // the count can only exceed the row length, never hide inside it,
        // because the gather below also proves every cached column was hit.
        if (touched != crp[i + 1] - crp[i]) {
          ok.store(false, std::memory_order_relaxed);
          return;
        }
        for (Index kc = crp[i]; kc < crp[i + 1]; ++kc) {
          const Slot& s = acc[cci[kc]];
          if (s.marker != i) { // pattern shrank: entry has no terms
            ok.store(false, std::memory_order_relaxed);
            return;
          }
          cva[kc] = s.value;
        }
      }
    }
  });
  return ok.load(std::memory_order_relaxed);
}

} // namespace

void GalerkinProduct::reset() {
  *this = GalerkinProduct{};
}

bool GalerkinProduct::cache_valid(const CsrMatrix& a,
                                  const CsrMatrix& p) const {
  return a.row_ptr() == a_row_ptr_ && a.col_idx() == a_col_idx_ &&
         p.row_ptr() == p_row_ptr_ && p.col_idx() == p_col_idx_;
}

void GalerkinProduct::full_setup(const CsrMatrix& a, const CsrMatrix& p) {
  PT_ASSERT(a.rows() == a.cols());
  PT_ASSERT(a.cols() == p.rows());
  a_row_ptr_ = a.row_ptr();
  a_col_idx_ = a.col_idx();
  p_row_ptr_ = p.row_ptr();
  p_col_idx_ = p.col_idx();

  pt_ = p.transpose();
  // Replay the transpose's counting sort on indices to record, for each P^T
  // entry, which P entry it copies — the refresh is then a pure permutation
  // gather (no FP ops, trivially bitwise identical).
  pt_src_.assign(static_cast<std::size_t>(p.nnz()), 0);
  {
    std::vector<Index> next(pt_.row_ptr().begin(), pt_.row_ptr().end() - 1);
    const Index* prp = p.row_ptr().data();
    const Index* pci = p.col_idx().data();
    for (Index i = 0; i < p.rows(); ++i)
      for (Index k = prp[i]; k < prp[i + 1]; ++k)
        pt_src_[static_cast<std::size_t>(next[pci[k]]++)] = k;
  }

  ap_ = CsrMatrix::multiply(a, p);
  c_ = CsrMatrix::multiply(pt_, ap_);
  ready_ = true;
}

bool GalerkinProduct::refresh(const CsrMatrix& a, const CsrMatrix& p) {
  // 1. P^T values by cached permutation.
  const Real* pv = p.values().data();
  Real* ptv = pt_.values().data();
  const Index* src = pt_src_.data();
  parallel_for(p.nnz(), [&](Index k) { ptv[k] = pv[src[k]]; });
  // 2. AP = A * P, numeric only (verifies AP's pattern is unchanged).
  // 3. C = P^T * AP, numeric only (verifies C's pattern likewise).
  return multiply_numeric(a, p, ap_) && multiply_numeric(pt_, ap_, c_);
}

CsrMatrix GalerkinProduct::product(const CsrMatrix& a, const CsrMatrix& p) {
  if (ready_ && cache_valid(a, p) && refresh(a, p)) {
    last_refresh_ = true;
    ++refreshes_;
  } else {
    full_setup(a, p);
    last_refresh_ = false;
    ++setups_;
  }
  return c_;
}

} // namespace ptatin
