// Robustness tests: fault injection, divergence guards in every Krylov
// method, checkpoint rollback, nonlinear escalation, and the safeguarded
// stepper (docs/ROBUSTNESS.md). Every recovery path is driven by a
// deterministic injected fault, so the paths are proven to fire.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "ksp/cg.hpp"
#include "ksp/chebyshev.hpp"
#include "ksp/gcr.hpp"
#include "ksp/gmres.hpp"
#include "ksp/richardson.hpp"
#include "la/coo.hpp"
#include "nonlin/newton.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "ptatin/checkpoint.hpp"
#include "ptatin/context.hpp"
#include "ptatin/exit_codes.hpp"
#include "ptatin/health.hpp"
#include "ptatin/models_sinker.hpp"
#include "ptatin/stepper.hpp"
#include "rheology/flow_law.hpp"
#include "stokes/fields.hpp"

namespace ptatin {
namespace {

/// Every test starts and ends with no armed faults; a failing test must not
/// leak its faults into the next one.
class Robustness : public ::testing::Test {
protected:
  void SetUp() override { fault::FaultInjector::instance().disarm_all(); }
  void TearDown() override { fault::FaultInjector::instance().disarm_all(); }
};

CsrMatrix spd_diag(Index n) {
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) coo.add(i, i, Real(i + 1));
  return coo.to_csr();
}

// --- fault injector ----------------------------------------------------------

TEST_F(Robustness, SpecParsingAcceptsValidRejectsMalformed) {
  auto& fi = fault::FaultInjector::instance();
  EXPECT_TRUE(fi.arm_from_spec("ksp.rnorm:3"));
  fi.disarm_all();
  EXPECT_TRUE(fi.arm_from_spec("a:2:inf:5,b:1:zero:*"));
  fi.disarm_all();
  EXPECT_FALSE(fi.arm_from_spec(""));
  EXPECT_FALSE(fi.arm_from_spec("a"));
  EXPECT_FALSE(fi.arm_from_spec("a:x"));
  EXPECT_FALSE(fi.arm_from_spec("a:0"));
  EXPECT_FALSE(fi.arm_from_spec("a:1:bogus"));
  EXPECT_FALSE(fi.arm_from_spec("a:1:nan:0"));
  EXPECT_FALSE(fi.enabled());
}

TEST_F(Robustness, NthCallWindowIsDeterministic) {
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("t.site:3:nan:2"));
  EXPECT_EQ(fault::corrupt("t.site", 7.0), 7.0); // call 1
  EXPECT_EQ(fault::corrupt("t.site", 7.0), 7.0); // call 2
  EXPECT_TRUE(std::isnan(fault::corrupt("t.site", 7.0))); // call 3 fires
  EXPECT_TRUE(std::isnan(fault::corrupt("t.site", 7.0))); // call 4 fires
  EXPECT_EQ(fault::corrupt("t.site", 7.0), 7.0); // call 5: window over
  EXPECT_EQ(fault::corrupt("t.other", 7.0), 7.0); // other sites untouched
  EXPECT_EQ(fi.injected(), 2);
}

TEST_F(Robustness, ErrorKindThrowsOnNthCall) {
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("t.io:2:error"));
  EXPECT_NO_THROW(fault::maybe_fail("t.io"));
  EXPECT_THROW(fault::maybe_fail("t.io"), Error);
}

// --- KSP NaN guards: no solver throws or spins on a poisoned residual -------

/// Arm a NaN on the second residual norm and expect the solver to return
/// kDivergedNanOrInf promptly instead of iterating on garbage.
template <class Solve>
void expect_nan_exit(Solve&& solve) {
  auto& fi = fault::FaultInjector::instance();
  fi.disarm_all();
  ASSERT_TRUE(fi.arm_from_spec("ksp.rnorm:2:nan:*"));
  SolveStats st;
  ASSERT_NO_THROW(st = solve());
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.reason, ConvergedReason::kDivergedNanOrInf);
  EXPECT_LE(st.iterations, 2); // detected at once, not after max_it
  fi.disarm_all();
}

TEST_F(Robustness, AllSolversExitOnNanResidual) {
  const Index n = 16;
  CsrMatrix a = spd_diag(n);
  MatrixOperator op(&a);
  IdentityPc pc;
  Vector b(n, 1.0);
  KrylovSettings s;
  s.max_it = 50;

  expect_nan_exit([&] { Vector x; return cg_solve(op, pc, b, x, s); });
  expect_nan_exit([&] { Vector x; return gmres_solve(op, pc, b, x, s); });
  expect_nan_exit([&] { Vector x; return fgmres_solve(op, pc, b, x, s); });
  expect_nan_exit([&] { Vector x; return gcr_solve(op, pc, b, x, s); });
  expect_nan_exit(
      [&] { Vector x; return richardson_solve(op, pc, b, x, s); });
  expect_nan_exit([&] {
    ChebyshevSmoother cheb;
    Vector diag(n);
    for (Index i = 0; i < n; ++i) diag[i] = Real(i + 1);
    cheb.setup(op, std::move(diag), {});
    Vector x;
    return cheb.solve(b, x, s);
  });
}

TEST_F(Robustness, RichardsonHitsDtolOnDivergence) {
  // Overdamped Richardson on an SPD system diverges geometrically; the dtol
  // guard must stop it long before max_it.
  const Index n = 8;
  CsrMatrix a = spd_diag(n);
  MatrixOperator op(&a);
  IdentityPc pc;
  Vector b(n, 1.0), x;
  KrylovSettings s;
  s.max_it = 10000;
  s.dtol = 100.0;
  SolveStats st = richardson_solve(op, pc, b, x, s, /*damping=*/2.0);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.reason, ConvergedReason::kDivergedDtol);
  EXPECT_LT(st.iterations, 100);
  EXPECT_TRUE(is_fatal(st.reason));
}

TEST_F(Robustness, CgReportsBreakdownOnIndefiniteOperator) {
  // diag(1, -1): the first pAp vanishes — formerly a PT_ASSERT abort.
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, -1.0);
  CsrMatrix a = coo.to_csr();
  MatrixOperator op(&a);
  IdentityPc pc;
  Vector b(2, 1.0), x;
  KrylovSettings s;
  SolveStats st;
  ASSERT_NO_THROW(st = cg_solve(op, pc, b, x, s));
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.reason, ConvergedReason::kDivergedBreakdown);
}

TEST_F(Robustness, GmresSurvivesForcedHessenbergBreakdown) {
  const Index n = 12;
  CsrMatrix a = spd_diag(n);
  MatrixOperator op(&a);
  IdentityPc pc;
  Vector b(n, 1.0);
  for (const char* which : {"gmres", "fgmres"}) {
    auto& fi = fault::FaultInjector::instance();
    fi.disarm_all();
    ASSERT_TRUE(fi.arm_from_spec("ksp.breakdown:1:zero"));
    Vector x;
    KrylovSettings s;
    SolveStats st;
    if (std::string(which) == "gmres") {
      ASSERT_NO_THROW(st = gmres_solve(op, pc, b, x, s));
    } else {
      ASSERT_NO_THROW(st = fgmres_solve(op, pc, b, x, s));
    }
    EXPECT_FALSE(st.converged) << which;
    EXPECT_EQ(st.reason, ConvergedReason::kDivergedBreakdown) << which;
  }
}

TEST_F(Robustness, CleanSolvesStillConvergeWithGuardsArmedElsewhere) {
  // Guards must not change behaviour when the armed site never fires.
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("unused.site:1:nan:*"));
  const Index n = 16;
  CsrMatrix a = spd_diag(n);
  MatrixOperator op(&a);
  IdentityPc pc;
  Vector b(n, 1.0), x;
  KrylovSettings s;
  s.rtol = 1e-10;
  SolveStats st = cg_solve(op, pc, b, x, s);
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.reason, ConvergedReason::kConvergedRtol);
}

// --- nonlinear tier ----------------------------------------------------------

CoefficientUpdater power_law_updater(const StructuredMesh& mesh, Real n_exp) {
  ArrheniusParams ap;
  ap.eta0 = 1.0;
  ap.n = n_exp;
  ap.eps0 = 1.0;
  ap.eta_min = 1e-4;
  ap.eta_max = 1e4;
  auto law = std::make_shared<ArrheniusLaw>(ap);
  return [&mesh, law](const Vector& u, const Vector&, bool newton,
                      QuadCoefficients& coeff) {
    std::vector<StrainRateSample> s;
    evaluate_strain_rates(mesh, u, s);
    if (newton && !coeff.has_newton()) coeff.allocate_newton();
    for (Index e = 0; e < mesh.num_elements(); ++e)
      for (int q = 0; q < kQuadPerEl; ++q) {
        const auto& sq = s[e * kQuadPerEl + q];
        RheologyState st;
        st.j2 = sq.j2;
        const ViscosityEval ve = law->viscosity(st);
        coeff.eta(e, q) = ve.eta;
        coeff.rho(e, q) = 1.0;
        if (newton) {
          coeff.deta(e, q) = ve.deta_dj2;
          for (int t = 0; t < kSymSize; ++t) coeff.d0(e, q)[t] = sq.d[t];
        }
      }
  };
}

DirichletBc lid_bc(const StructuredMesh& mesh, Real lid_speed) {
  DirichletBc bc(num_velocity_dofs(mesh));
  for (auto f : {MeshFace::kXMin, MeshFace::kXMax, MeshFace::kYMin,
                 MeshFace::kYMax, MeshFace::kZMin})
    constrain_no_slip(mesh, f, bc);
  constrain_face_component(mesh, MeshFace::kZMax, 0, lid_speed, bc);
  constrain_face_component(mesh, MeshFace::kZMax, 1, 0.0, bc);
  constrain_face_component(mesh, MeshFace::kZMax, 2, 0.0, bc);
  return bc;
}

NonlinearOptions shear_options() {
  NonlinearOptions o;
  o.linear.gmg.levels = 2;
  o.linear.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  o.linear.coarse_bjacobi_blocks = 1;
  o.linear.bc_factory = [](const StructuredMesh& m) { return lid_bc(m, 0.0); };
  // Loose enough that the Picard fallback can finish the job: Picard
  // stagnates on shear-thinning problems near tight tolerances (§III-A),
  // which is exactly why Newton exists.
  o.rtol = 1e-2;
  return o;
}

TEST_F(Robustness, NewtonFallsBackToPicardOnLinearFailure) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = lid_bc(mesh, 1.0);
  NonlinearOptions opts = shear_options();
  NonlinearStokesSolver solver(mesh, bc, opts);

  // Fail the second inner linear solve once: the Newton attempt aborts,
  // the Picard restart (fault consumed) carries the solve to convergence.
  // Mild shear thinning (n = 1.5) keeps Picard convergent on its own.
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("nonlin.linsolve:2:error:1"));

  Vector u(num_velocity_dofs(mesh), 0.0), p;
  bc.set_values(u);
  Vector f(num_velocity_dofs(mesh), 0.0);
  NonlinearResult res = solver.solve(power_law_updater(mesh, 1.5), f, u, p);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.failure, NonlinearFailure::kNone);
  EXPECT_EQ(res.picard_fallbacks, 1);
  EXPECT_EQ(fi.injected(), 1);
}

TEST_F(Robustness, NanResidualIsNotRetriedAtNonlinearTier) {
  // A poisoned state cannot be salvaged by changing linearization; the
  // failure must surface (for the timestep tier) instead of a Picard retry.
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  DirichletBc bc = lid_bc(mesh, 1.0);
  NonlinearOptions opts = shear_options();
  NonlinearStokesSolver solver(mesh, bc, opts);

  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("nonlin.rnorm:2:nan:1"));

  Vector u(num_velocity_dofs(mesh), 0.0), p;
  bc.set_values(u);
  Vector f(num_velocity_dofs(mesh), 0.0);
  NonlinearResult res = solver.solve(power_law_updater(mesh, 3.0), f, u, p);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.failure, NonlinearFailure::kNanResidual);
  EXPECT_EQ(res.picard_fallbacks, 0);
}

// --- checkpoint / rollback ---------------------------------------------------

PtatinOptions tiny_options() {
  PtatinOptions o;
  o.points_per_dim = 2;
  o.nonlinear.max_it = 3;
  o.nonlinear.rtol = 1e-2;
  o.nonlinear.linear.gmg.levels = 2;
  o.nonlinear.linear.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  o.nonlinear.linear.coarse_bjacobi_blocks = 1;
  o.nonlinear.linear.krylov.max_it = 300;
  return o;
}

SinkerParams tiny_sinker() {
  SinkerParams p;
  p.mx = p.my = p.mz = 4;
  p.num_spheres = 1;
  p.radius = 0.2;
  p.contrast = 1e2;
  return p;
}

TEST_F(Robustness, MemoryCheckpointRestoresStateBitwise) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  ctx.step(0.005); // non-trivial state

  Vector u0, p0;
  u0.copy_from(ctx.velocity());
  p0.copy_from(ctx.pressure());
  std::vector<Vec3> x0(ctx.points().size());
  for (Index i = 0; i < ctx.points().size(); ++i)
    x0[std::size_t(i)] = ctx.points().position(i);

  MemoryCheckpoint snap;
  snap.capture(ctx);
  ASSERT_TRUE(snap.valid());
  EXPECT_GT(snap.size_bytes(), 0u);

  ctx.step(0.005); // mutate everything
  snap.restore(ctx);

  ASSERT_EQ(ctx.velocity().size(), u0.size());
  for (Index i = 0; i < u0.size(); ++i) EXPECT_EQ(ctx.velocity()[i], u0[i]);
  for (Index i = 0; i < p0.size(); ++i) EXPECT_EQ(ctx.pressure()[i], p0[i]);
  ASSERT_EQ(ctx.points().size(), Index(x0.size()));
  for (Index i = 0; i < ctx.points().size(); ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_EQ(ctx.points().position(i)[d], x0[std::size_t(i)][d]);
}

TEST_F(Robustness, CheckpointWriteFaultThrowsAndRestoreWithoutCaptureFails) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  MemoryCheckpoint snap;
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("checkpoint.write:1:error:1"));
  EXPECT_THROW(snap.capture(ctx), Error);
  EXPECT_FALSE(snap.valid());
  EXPECT_THROW(snap.restore(ctx), Error);
  // Fault consumed: the next capture succeeds.
  EXPECT_NO_THROW(snap.capture(ctx));
  EXPECT_TRUE(snap.valid());
}

// --- timestep tier -----------------------------------------------------------

TEST_F(Robustness, StepperRollsBackAndRetriesWithSmallerDt) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardedStepper stepper(ctx);

  auto& report = obs::SolverReport::global();
  report.clear();
  report.set_enabled(true);

  // NaN in the first nonlinear iteration's residual of the first attempt;
  // one-shot, so the retry after rollback runs clean.
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("nonlin.rnorm:2:nan:1"));

  SafeguardedStepResult res = stepper.advance(0.01);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.retries, 1);
  EXPECT_NEAR(res.dt_used, 0.005, 1e-12);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_NE(res.failures[0].find("nan_residual"), std::string::npos);
  // The recovery cap holds the next step near the dt that worked.
  EXPECT_NEAR(stepper.clamp_dt(0.01), 0.005, 1e-12);

  ASSERT_EQ(report.safeguard_events().size(), 1u);
  const obs::SafeguardRecord& rec = report.safeguard_events()[0];
  EXPECT_EQ(rec.step, 1);
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.retries, 1);
  ASSERT_EQ(rec.dt_history.size(), 2u);
  EXPECT_NEAR(rec.dt_history[0], 0.01, 1e-12);
  EXPECT_NEAR(rec.dt_history[1], 0.005, 1e-12);
  report.set_enabled(false);
  report.clear();

  // State is finite and the step actually advanced.
  EXPECT_GT(res.report.nonlinear.total_krylov_iterations, 0);
}

TEST_F(Robustness, StepperGivesUpAfterMaxRetries) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardOptions sg;
  sg.max_retries = 1;
  SafeguardedStepper stepper(ctx, sg);

  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("nonlin.rnorm:1:nan:*")); // every residual

  SafeguardedStepResult res = stepper.advance(0.01);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.retries, 1);
  EXPECT_EQ(res.failures.size(), 2u);
  fi.disarm_all();

  // The rollback left a usable state behind: the next step runs clean.
  SafeguardedStepResult next = stepper.advance(0.01);
  EXPECT_TRUE(next.ok);
}

TEST_F(Robustness, StepperToleratesSnapshotFailure) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardedStepper stepper(ctx);
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("checkpoint.write:1:error:1"));
  // Snapshot fails, the step itself is clean: advance without protection.
  SafeguardedStepResult res = stepper.advance(0.005);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.retries, 0);
}

// --- durable checkpoints: format, integrity, rotation ------------------------

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path((std::filesystem::temp_directory_path() /
              ("ptatin_test_" + tag)).string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

long long counter_value(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

TEST_F(Robustness, Crc32MatchesKnownVectorAndChains) {
  // IEEE 802.3 check value for the standard 9-byte test vector.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Chaining: crc of a buffer equals crc of its halves fed in sequence.
  const char buf[] = "durable checkpoint payload";
  const std::size_t n = sizeof(buf) - 1;
  EXPECT_EQ(crc32(buf, n), crc32(buf + 10, n - 10, crc32(buf, 10)));
}

TEST_F(Robustness, CheckpointFileRoundTripIsBitwiseWithMeta) {
  ScratchDir dir("ckpt_roundtrip");
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  ctx.step(0.005);
  const StateDigest before = digest_state(ctx);

  CheckpointMeta meta;
  meta.step = 17;
  meta.sim_time = 0.085;
  meta.dt_cap = 0.0025;
  save_checkpoint(dir.file("a.bin"), ctx, meta);

  // No stray tmp file survives the atomic publication.
  EXPECT_FALSE(std::filesystem::exists(dir.file("a.bin.tmp")));

  PtatinContext fresh(make_sinker_model(tiny_sinker()), tiny_options());
  EXPECT_NE(digest_state(fresh), before);
  const CheckpointMeta back = load_checkpoint(dir.file("a.bin"), fresh);
  EXPECT_EQ(back.step, 17);
  EXPECT_DOUBLE_EQ(back.sim_time, 0.085);
  EXPECT_DOUBLE_EQ(back.dt_cap, 0.0025);
  EXPECT_EQ(digest_state(fresh), before);
}

TEST_F(Robustness, CheckpointReadFaultSurfacesBeforeCrcCheck) {
  ScratchDir dir("ckpt_readfault");
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  save_checkpoint(dir.file("a.bin"), ctx);

  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("checkpoint.read:1:error:1"));
  EXPECT_THROW(load_checkpoint(dir.file("a.bin"), ctx), Error);
  EXPECT_EQ(fi.injected(), 1);
  // Fault consumed: the same (intact) file loads cleanly.
  EXPECT_NO_THROW(load_checkpoint(dir.file("a.bin"), ctx));
}

TEST_F(Robustness, BitflipFaultCorruptsPublishedFileAndCrcCatchesIt) {
  ScratchDir dir("ckpt_bitflip");
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("checkpoint.bitflip:1:error:1"));
  save_checkpoint(dir.file("a.bin"), ctx);
  fi.disarm_all();

  PtatinContext fresh(make_sinker_model(tiny_sinker()), tiny_options());
  const StateDigest untouched = digest_state(fresh);
  EXPECT_THROW(load_checkpoint(dir.file("a.bin"), fresh), Error);
  // Verify-before-apply: the failed load left the context untouched.
  EXPECT_EQ(digest_state(fresh), untouched);
}

TEST_F(Robustness, TornWriteFaultTruncatesFileAndLoadFails) {
  ScratchDir dir("ckpt_torn");
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("checkpoint.torn_write:1:error:1"));
  save_checkpoint(dir.file("a.bin"), ctx);
  fi.disarm_all();

  EXPECT_THROW(load_checkpoint(dir.file("a.bin"), ctx), Error);
}

TEST_F(Robustness, RotationKeepsLastKWithManifest) {
  ScratchDir dir("ckpt_rotation");
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  CheckpointRotation rot(dir.path, /*keep=*/2);

  const long long pruned0 = counter_value("checkpoint.pruned");
  for (int s = 1; s <= 4; ++s) {
    CheckpointMeta meta;
    meta.step = s;
    rot.save(ctx, meta);
  }
  const std::vector<std::string> files = rot.list();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("ckpt_000003.bin"), std::string::npos);
  EXPECT_NE(files[1].find("ckpt_000004.bin"), std::string::npos);
  EXPECT_EQ(counter_value("checkpoint.pruned") - pruned0, 2);
  EXPECT_TRUE(std::filesystem::exists(dir.file("manifest.json")));

  // Newest wins on load.
  CheckpointRotation::LoadResult lr = rot.load_latest(ctx);
  EXPECT_EQ(lr.meta.step, 4);
  EXPECT_TRUE(lr.skipped.empty());
}

TEST_F(Robustness, RotationFallsBackPastCorruptNewestCheckpoint) {
  ScratchDir dir("ckpt_fallback");
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  ctx.step(0.005);
  CheckpointRotation rot(dir.path, /*keep=*/3);

  CheckpointMeta meta;
  meta.step = 2;
  rot.save(ctx, meta);
  const StateDigest good = digest_state(ctx);

  ctx.step(0.005);
  meta.step = 4;
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("checkpoint.bitflip:1:error:1"));
  rot.save(ctx, meta); // published, then silently corrupted
  fi.disarm_all();

  auto& report = obs::SolverReport::global();
  report.state() = obs::StateRecord{};
  const long long skipped0 = counter_value("checkpoint.corrupt_skipped");

  PtatinContext fresh(make_sinker_model(tiny_sinker()), tiny_options());
  CheckpointRotation::LoadResult lr = rot.load_latest(fresh);
  EXPECT_EQ(lr.meta.step, 2);
  ASSERT_EQ(lr.skipped.size(), 1u);
  EXPECT_NE(lr.skipped[0].find("ckpt_000004.bin"), std::string::npos);
  EXPECT_EQ(digest_state(fresh), good);
  EXPECT_EQ(counter_value("checkpoint.corrupt_skipped") - skipped0, 1);

  // The solver report's state section records the restart and the skip.
  const obs::StateRecord& st = obs::SolverReport::global().state();
  EXPECT_EQ(st.restarts, 1);
  EXPECT_EQ(st.restart_step, 2);
  EXPECT_EQ(st.restart_path, lr.path);
  ASSERT_EQ(st.corrupt_skipped.size(), 1u);
  report.state() = obs::StateRecord{};
}

TEST_F(Robustness, RotationThrowsWhenEveryCheckpointIsCorrupt) {
  ScratchDir dir("ckpt_allbad");
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  CheckpointRotation rot(dir.path, 3);
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("checkpoint.bitflip:1:error:*"));
  CheckpointMeta meta;
  meta.step = 1;
  rot.save(ctx, meta);
  meta.step = 2;
  rot.save(ctx, meta);
  fi.disarm_all();
  EXPECT_THROW(rot.load_latest(ctx), Error);
}

// --- run-health watchdog -----------------------------------------------------

TEST_F(Robustness, HealthCheckPassesOnCleanStateAndCountsChecks) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  const long long checks0 = counter_value("health.checks");
  const HealthReport hr = check_health(ctx);
  EXPECT_TRUE(hr.ok);
  EXPECT_EQ(hr.summary(), "ok");
  EXPECT_EQ(hr.nonfinite_values, 0);
  EXPECT_EQ(hr.inverted_elements, 0);
  EXPECT_EQ(counter_value("health.checks") - checks0, 1);
}

TEST_F(Robustness, HealthCheckDetectsInjectedFieldNan) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("health.field_nan:1:error:1"));
  const long long fails0 = counter_value("health.failures");
  const HealthReport hr = check_health(ctx);
  EXPECT_FALSE(hr.ok);
  EXPECT_GE(hr.nonfinite_values, 1);
  EXPECT_NE(hr.summary().find("non-finite"), std::string::npos);
  EXPECT_EQ(counter_value("health.failures") - fails0, 1);
}

TEST_F(Robustness, HealthCheckDetectsRealNanInVelocity) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  ctx.mutable_velocity()[0] = std::nan("");
  const HealthReport hr = check_health(ctx);
  EXPECT_FALSE(hr.ok);
  EXPECT_EQ(hr.nonfinite_values, 1);
}

TEST_F(Robustness, HealthCheckDetectsInvertedElement) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  // Collapse node 0 through the element: negative Jacobian at some
  // quadrature point of the incident elements.
  StructuredMesh& mesh = ctx.mutable_mesh();
  Vec3 x0 = mesh.node_coord(0);
  mesh.set_node_coord(0, Vec3{x0[0] + 0.9, x0[1] + 0.9, x0[2] + 0.9});
  HealthOptions ho;
  ho.check_population = false; // isolate the geometry check
  const long long inv0 = counter_value("health.inverted_elements");
  const HealthReport hr = check_health(ctx, ho);
  EXPECT_FALSE(hr.ok);
  EXPECT_GE(hr.inverted_elements, 1);
  EXPECT_NE(hr.summary().find("inverted"), std::string::npos);
  EXPECT_GE(counter_value("health.inverted_elements") - inv0, 1);
}

TEST_F(Robustness, StepperRecoversFromHealthTripByRollback) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardOptions sg;
  sg.health_every = 1;
  SafeguardedStepper stepper(ctx, sg);

  // The first attempt's health check trips; the retry (fault consumed)
  // passes, so the step recovers exactly like a solver failure would.
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("health.field_nan:1:error:1"));

  SafeguardedStepResult res = stepper.advance(0.01);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.retries, 1);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_EQ(res.failures[0].rfind("health:", 0), 0u) << res.failures[0];
}

TEST_F(Robustness, StepperChecksHealthBeforeEveryDurableCheckpoint) {
  ScratchDir dir("ckpt_health_gate");
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardOptions sg;
  sg.checkpoint_dir = dir.path;
  sg.checkpoint_every = 1; // health is implied on every checkpointed step
  sg.max_retries = 0;      // a health trip must fail the step outright
  SafeguardedStepper stepper(ctx, sg);

  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("health.field_nan:1:error:1"));
  SafeguardedStepResult res = stepper.advance(0.005);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.checkpoint_path.empty());
  // The poisoned state was never published.
  EXPECT_TRUE(CheckpointRotation(dir.path, 3).list().empty());
  fi.disarm_all();

  // Next step is clean and durably checkpointed.
  res = stepper.advance(0.005);
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(res.checkpoint_path.empty());
  EXPECT_TRUE(std::filesystem::exists(res.checkpoint_path));
}

// --- restart round trip ------------------------------------------------------

TEST_F(Robustness, RestartReproducesUninterruptedRunBitwise) {
  // Reference: four safeguarded steps straight through.
  PtatinContext ref(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardedStepper ref_stepper(ref);
  for (int s = 0; s < 4; ++s)
    ASSERT_TRUE(ref_stepper.advance(0.004).ok);
  const StateDigest want = digest_state(ref);

  // Same run, but checkpointing every second step.
  ScratchDir dir("ckpt_restart");
  PtatinContext a(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardOptions sg;
  sg.checkpoint_dir = dir.path;
  sg.checkpoint_every = 2;
  {
    SafeguardedStepper stepper(a, sg);
    for (int s = 0; s < 4; ++s)
      ASSERT_TRUE(stepper.advance(0.004).ok);
  }
  // Checkpointing itself must not perturb the trajectory.
  EXPECT_EQ(digest_state(a), want);

  // "Kill" after step 2: drop the newest checkpoint, restart from disk, and
  // integrate the remaining steps. The digest must match bit for bit.
  std::filesystem::remove(dir.file("ckpt_000004.bin"));
  PtatinContext b(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardedStepper stepper(b, sg);
  CheckpointRotation::LoadResult lr = stepper.rotation()->load_latest(b);
  ASSERT_EQ(lr.meta.step, 2);
  stepper.resume(lr.meta);
  EXPECT_EQ(stepper.steps_taken(), 2);
  for (int s = 0; s < 2; ++s)
    ASSERT_TRUE(stepper.advance(0.004).ok);
  EXPECT_EQ(digest_state(b), want);
  obs::SolverReport::global().state() = obs::StateRecord{};
}

// --- silent data corruption (docs/ROBUSTNESS.md) -----------------------------

TEST_F(Robustness, SealDetectsBitFlipSizeChangeAndRegionLoss) {
  std::vector<Real> buf(64, 1.5);
  auto regions = [&buf] {
    return std::vector<sdc::Region>{
        {"test.buf", buf.data(), buf.size() * sizeof(Real)}};
  };
  sdc::Seal seal;
  EXPECT_FALSE(seal.armed());
  seal.arm(regions());
  EXPECT_TRUE(seal.armed());
  EXPECT_TRUE(seal.verify(regions()).empty());

  buf[17] = sdc::flip_low_mantissa_bit(buf[17]);
  std::vector<std::string> bad = seal.verify(regions());
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "test.buf");

  // Re-arming blesses the current bytes.
  seal.arm(regions());
  EXPECT_TRUE(seal.verify(regions()).empty());

  // A size change is corruption too, not just in-place flips.
  buf.resize(32);
  EXPECT_FALSE(seal.verify(regions()).empty());
  seal.disarm();
  EXPECT_FALSE(seal.armed());
}

TEST_F(Robustness, FlipLowMantissaBitIsFinitePlausibleAndInvertible) {
  const Real v = 1.2331e-01;
  const Real flipped = sdc::flip_low_mantissa_bit(v);
  EXPECT_NE(flipped, v);
  EXPECT_TRUE(std::isfinite(flipped));
  EXPECT_NEAR(flipped, v, 1e-12); // invisible to any range check
  EXPECT_EQ(sdc::flip_low_mantissa_bit(flipped), v);
}

TEST_F(Robustness, SealRegistryScopedLifecycleVerifyAllAndRearm) {
  auto& reg = sdc::SealRegistry::instance();
  const std::size_t size0 = reg.size();
  std::vector<Real> buf(16, 2.0);
  {
    sdc::ScopedSeal seal("test.obj", [&buf] {
      return std::vector<sdc::Region>{
          {"data", buf.data(), buf.size() * sizeof(Real)}};
    });
    EXPECT_EQ(reg.size(), size0 + 1);
    EXPECT_TRUE(reg.verify_all().empty());

    buf[3] = sdc::flip_low_mantissa_bit(buf[3]);
    std::vector<std::string> bad = reg.verify_all();
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0], "test.obj/data"); // entry/region names localize it

    seal.rearm(); // sanctioned mutation: blessed again
    EXPECT_TRUE(reg.verify_all().empty());
  }
  EXPECT_EQ(reg.size(), size0); // RAII removal — no dangling provider
}

TEST_F(Robustness, IsSdcFailureClassifiesPrefixAndSentinelReason) {
  EXPECT_TRUE(sdc::is_sdc_failure("sdc: state corrupted"));
  EXPECT_TRUE(sdc::is_sdc_failure(
      "nonlinear: linear_breakdown (u-solve diverged_sdc)"));
  EXPECT_FALSE(sdc::is_sdc_failure("nonlinear: nan_residual"));
  EXPECT_FALSE(sdc::is_sdc_failure("health: non-finite values"));
  EXPECT_FALSE(sdc::is_sdc_failure("transport: frame dropped"));
}

TEST_F(Robustness, FieldBitflipInvisibleToHealthButHealedBySealBitwise) {
  // The ISSUE 8 acceptance regression: a low-mantissa velocity flip between
  // steps passes the NaN/Jacobian health pass, is caught by the state seal
  // on reentry, healed from the last good snapshot, and the healed
  // trajectory is bitwise identical to a fault-free run.
  PtatinContext ref(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardedStepper ref_stepper(ref);
  for (int s = 0; s < 3; ++s) ASSERT_TRUE(ref_stepper.advance(0.004).ok);
  const StateDigest want = digest_state(ref);

  auto& report = obs::SolverReport::global();
  report.clear();
  const long long heals0 = counter_value("sdc.heals");
  const long long detections0 = counter_value("sdc.detections");

  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardedStepper stepper(ctx);
  auto& fi = fault::FaultInjector::instance();
  // Fires right after step 1 seals its state: the corruption sits in the
  // "quiescent" field across the step boundary.
  ASSERT_TRUE(fi.arm_from_spec("sdc.field_bitflip:1:error:1"));
  ASSERT_TRUE(stepper.advance(0.004).ok);
  EXPECT_EQ(fi.injected(), 1);

  // The health pass alone does NOT see the flip — that is the threat model.
  EXPECT_TRUE(check_health(ctx).ok);

  SafeguardedStepResult res = stepper.advance(0.004);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.retries, 0); // healed at the boundary, not by retry
  ASSERT_TRUE(stepper.advance(0.004).ok);

  EXPECT_EQ(digest_state(ctx), want);
  EXPECT_EQ(counter_value("sdc.detections") - detections0, 1);
  EXPECT_EQ(counter_value("sdc.heals") - heals0, 1);
  EXPECT_EQ(report.sdc().detections, 1);
  EXPECT_EQ(report.sdc().heals, 1);
  EXPECT_EQ(report.sdc().unrecovered, 0);
  EXPECT_GE(report.sdc().seals_armed, 3);
  report.clear();
}

TEST_F(Robustness, ParticleBitflipIsHealedBitwiseToo) {
  PtatinContext ref(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardedStepper ref_stepper(ref);
  for (int s = 0; s < 2; ++s) ASSERT_TRUE(ref_stepper.advance(0.004).ok);
  const StateDigest want = digest_state(ref);

  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardedStepper stepper(ctx);
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("sdc.particle_bitflip:1:error:1"));
  ASSERT_TRUE(stepper.advance(0.004).ok);
  EXPECT_EQ(fi.injected(), 1);
  EXPECT_TRUE(check_health(ctx).ok);
  ASSERT_TRUE(stepper.advance(0.004).ok);
  EXPECT_EQ(digest_state(ctx), want);
}

TEST_F(Robustness, SanctionedMutationDisarmsSealInsteadOfTripping) {
  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardedStepper stepper(ctx);
  ASSERT_TRUE(stepper.advance(0.004).ok);
  // Out-of-band write through the mutable accessor: the epoch bump marks it
  // sanctioned, so the next step must NOT diagnose corruption.
  ctx.mutable_velocity()[0] += 1e-3;
  const long long detections0 = counter_value("sdc.detections");
  SafeguardedStepResult res = stepper.advance(0.004);
  EXPECT_TRUE(res.ok);
  EXPECT_TRUE(res.failures.empty());
  EXPECT_EQ(counter_value("sdc.detections") - detections0, 0);
}

TEST_F(Robustness, ScrubberFlagsCorruptedSetupImmutableObjectUnrecoverable) {
  std::vector<Real> operator_data(128, 3.25);
  sdc::ScopedSeal seal("test.operator", [&operator_data] {
    return std::vector<sdc::Region>{{"values", operator_data.data(),
                                     operator_data.size() * sizeof(Real)}};
  });

  PtatinContext ctx(make_sinker_model(tiny_sinker()), tiny_options());
  SafeguardOptions sg;
  sg.scrub_every = 1;
  SafeguardedStepper stepper(ctx, sg);
  ASSERT_TRUE(stepper.advance(0.004).ok); // clean scrub

  operator_data[7] = sdc::flip_low_mantissa_bit(operator_data[7]);
  const long long unrecovered0 = counter_value("sdc.unrecovered");
  SafeguardedStepResult res = stepper.advance(0.004);
  EXPECT_FALSE(res.ok); // no snapshot covers setup-immutable data
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_EQ(res.failures[0].rfind("sdc:", 0), 0u) << res.failures[0];
  EXPECT_NE(res.failures[0].find("test.operator/values"), std::string::npos)
      << res.failures[0];
  EXPECT_TRUE(sdc::is_sdc_failure(res.failures[0]));
  EXPECT_EQ(counter_value("sdc.unrecovered") - unrecovered0, 1);
}

TEST_F(Robustness, KrylovSentinelTripsOnInjectedDriftInCgAndGmres) {
  const Index n = 24;
  CsrMatrix a = spd_diag(n);
  MatrixOperator op(&a);
  IdentityPc pc;
  Vector b(n, 1.0);
  KrylovSettings s;
  s.max_it = 200;
  s.sentinel_every = 2;

  auto& fi = fault::FaultInjector::instance();
  for (const char* which : {"cg", "gmres", "fgmres"}) {
    fi.disarm_all();
    ASSERT_TRUE(fi.arm_from_spec("sdc.krylov_drift:1:error:1"));
    Vector x;
    SolveStats st;
    if (std::string(which) == "cg") {
      st = cg_solve(op, pc, b, x, s);
    } else if (std::string(which) == "gmres") {
      st = gmres_solve(op, pc, b, x, s);
    } else {
      st = fgmres_solve(op, pc, b, x, s);
    }
    EXPECT_FALSE(st.converged) << which;
    EXPECT_EQ(st.reason, ConvergedReason::kDivergedSdc) << which;
    EXPECT_TRUE(is_fatal(st.reason)) << which;
    EXPECT_NE(st.detail.find("recurrence residual"), std::string::npos)
        << which << ": " << st.detail;
  }
  fi.disarm_all();
}

TEST_F(Robustness, SentinelOnCleanSolveIsBitwiseInvisible) {
  const Index n = 24;
  CsrMatrix a = spd_diag(n);
  MatrixOperator op(&a);
  IdentityPc pc;
  Vector b(n, 1.0);

  KrylovSettings off;
  off.rtol = 1e-10;
  Vector x_off;
  const SolveStats st_off = cg_solve(op, pc, b, x_off, off);
  ASSERT_TRUE(st_off.converged);

  KrylovSettings on = off;
  on.sentinel_every = 1; // every iteration: the strictest cadence
  Vector x_on;
  const SolveStats st_on = cg_solve(op, pc, b, x_on, on);
  EXPECT_TRUE(st_on.converged);
  EXPECT_EQ(st_on.reason, st_off.reason);
  EXPECT_EQ(st_on.iterations, st_off.iterations);
  for (Index i = 0; i < n; ++i) EXPECT_EQ(x_on[i], x_off[i]) << i;
}

TEST_F(Robustness, SentinelTripHealsBySameDtReplayAtStepperTier) {
  // End to end through the stepper: the trip is classified SDC, replayed at
  // the SAME dt (no dt cut), and the healed digest matches fault-free.
  //
  // The Stokes outer Krylov is GCR (explicit residual — no recurrence to
  // drift), so the sentinel's in-solver path is the energy solve's GMRES:
  // give the sinker a temperature gradient so that solve does real work.
  const auto with_energy = [this] {
    ModelSetup ms = make_sinker_model(tiny_sinker());
    ms.use_energy = true;
    ms.initial_temperature = [](const Vec3& x) { return Real(1) - x[2]; };
    return ms;
  };
  PtatinOptions po = tiny_options();
  po.nonlinear.linear.krylov.sentinel_every = 2;
  PtatinContext ref(with_energy(), po);
  SafeguardedStepper ref_stepper(ref);
  for (int s = 0; s < 2; ++s) ASSERT_TRUE(ref_stepper.advance(0.004).ok);
  const StateDigest want = digest_state(ref);

  PtatinContext ctx(with_energy(), po);
  SafeguardedStepper stepper(ctx);
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("sdc.krylov_drift:1:error:1"));
  SafeguardedStepResult res = stepper.advance(0.004);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.retries, 1);
  EXPECT_NEAR(res.dt_used, 0.004, 0.0); // same-dt replay, not a dt cut
  ASSERT_GE(res.failures.size(), 1u);
  EXPECT_TRUE(sdc::is_sdc_failure(res.failures[0])) << res.failures[0];
  ASSERT_TRUE(stepper.advance(0.004).ok);
  EXPECT_EQ(digest_state(ctx), want);
}

TEST_F(Robustness, InjectorReportsArmedButUnfiredSpecs) {
  auto& fi = fault::FaultInjector::instance();
  ASSERT_TRUE(fi.arm_from_spec("sdc.fieldbitflip:1,t.real:1:nan:1"));
  EXPECT_TRUE(std::isnan(fault::corrupt("t.real", 1.0)));
  // The typo'd site never fires; unfired() names it for the teardown warning
  // (and the chaos campaign fails any faulted run that logs it).
  std::vector<fault::FaultSpec> unfired = fi.unfired();
  ASSERT_EQ(unfired.size(), 1u);
  EXPECT_EQ(unfired[0].site, "sdc.fieldbitflip");
  EXPECT_TRUE(fi.known_sites().size() >= 17u);
  for (const auto& info : fi.known_sites())
    EXPECT_NE(unfired[0].site, info.site); // the typo matches no real site
}

TEST_F(Robustness, SdcSectionRoundTripsThroughJson) {
  obs::SolverReport rep;
  obs::SdcRecord& sd = rep.sdc();
  sd.seals_armed = 42;
  sd.seal_verifies = 41;
  sd.scrubs = 7;
  sd.detections = 3;
  sd.heals = 2;
  sd.sentinel_checks = 500;
  sd.sentinel_trips = 1;
  sd.unrecovered = 1;

  obs::SolverReport back = obs::SolverReport::parse(rep.to_json_string());
  EXPECT_EQ(back.sdc().seals_armed, 42);
  EXPECT_EQ(back.sdc().seal_verifies, 41);
  EXPECT_EQ(back.sdc().scrubs, 7);
  EXPECT_EQ(back.sdc().detections, 3);
  EXPECT_EQ(back.sdc().heals, 2);
  EXPECT_EQ(back.sdc().sentinel_checks, 500);
  EXPECT_EQ(back.sdc().sentinel_trips, 1);
  EXPECT_EQ(back.sdc().unrecovered, 1);
}

// --- driver exit taxonomy ----------------------------------------------------

TEST_F(Robustness, DriverExitCodesAreStableAndDescribed) {
  EXPECT_EQ(int(DriverExit::kSuccess), 0);
  EXPECT_EQ(int(DriverExit::kSolverFailure), 1);
  EXPECT_EQ(int(DriverExit::kUsageError), 2);
  EXPECT_EQ(int(DriverExit::kCheckpointFailure), 3);
  EXPECT_EQ(int(DriverExit::kHealthFailure), 4);
  EXPECT_EQ(int(DriverExit::kSdcFailure), 6);
  EXPECT_STREQ(describe(DriverExit::kSuccess), "success");
  EXPECT_NE(std::string(describe(DriverExit::kSolverFailure)).find("solver"),
            std::string::npos);
  EXPECT_NE(
      std::string(describe(DriverExit::kCheckpointFailure)).find("checkpoint"),
      std::string::npos);
  EXPECT_NE(std::string(describe(DriverExit::kHealthFailure)).find("health"),
            std::string::npos);
}

// --- telemetry round trip ----------------------------------------------------

TEST_F(Robustness, SafeguardSectionRoundTripsThroughJson) {
  obs::SolverReport rep;
  obs::SafeguardRecord rec;
  rec.step = 7;
  rec.recovered = true;
  rec.retries = 2;
  rec.dt_history = {0.02, 0.01, 0.005};
  rec.failures = {"nonlinear: nan_residual", "nonlinear: diverged"};
  rep.add_safeguard(rec);
  obs::NewtonRecord nr;
  nr.label = "newton";
  nr.failure = "stagnation (line search made no progress)";
  nr.fallbacks = 1;
  rep.add_newton(nr);

  obs::SolverReport back = obs::SolverReport::parse(rep.to_json_string());
  ASSERT_EQ(back.safeguard_events().size(), 1u);
  const obs::SafeguardRecord& r = back.safeguard_events()[0];
  EXPECT_EQ(r.step, 7);
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.retries, 2);
  ASSERT_EQ(r.dt_history.size(), 3u);
  EXPECT_DOUBLE_EQ(r.dt_history[2], 0.005);
  ASSERT_EQ(r.failures.size(), 2u);
  EXPECT_EQ(r.failures[1], "nonlinear: diverged");
  ASSERT_EQ(back.newton_solves().size(), 1u);
  EXPECT_EQ(back.newton_solves()[0].failure,
            "stagnation (line search made no progress)");
  EXPECT_EQ(back.newton_solves()[0].fallbacks, 1);
}

TEST_F(Robustness, StateAndPopulationSectionsRoundTripThroughJson) {
  obs::SolverReport rep;
  obs::StateRecord& st = rep.state();
  st.checkpoint_saves = 5;
  st.checkpoint_save_failures = 1;
  st.restarts = 1;
  st.restart_step = 40;
  st.restart_path = "/ckpt/ckpt_000040.bin";
  st.corrupt_skipped = {"/ckpt/ckpt_000060.bin"};
  st.health_checks = 6;
  st.health_failures = 2;
  st.health_repairs = 1;
  obs::PopulationRecord pr;
  pr.step = 3;
  pr.injected = 12;
  pr.removed = 4;
  pr.deficient = 2;
  pr.min_per_cell = 5;
  pr.max_per_cell = 61;
  rep.add_population(pr);

  obs::SolverReport back = obs::SolverReport::parse(rep.to_json_string());
  const obs::StateRecord& s = back.state();
  EXPECT_EQ(s.checkpoint_saves, 5);
  EXPECT_EQ(s.checkpoint_save_failures, 1);
  EXPECT_EQ(s.restarts, 1);
  EXPECT_EQ(s.restart_step, 40);
  EXPECT_EQ(s.restart_path, "/ckpt/ckpt_000040.bin");
  ASSERT_EQ(s.corrupt_skipped.size(), 1u);
  EXPECT_EQ(s.corrupt_skipped[0], "/ckpt/ckpt_000060.bin");
  EXPECT_EQ(s.health_checks, 6);
  EXPECT_EQ(s.health_failures, 2);
  EXPECT_EQ(s.health_repairs, 1);
  ASSERT_EQ(back.population_events().size(), 1u);
  const obs::PopulationRecord& p = back.population_events()[0];
  EXPECT_EQ(p.step, 3);
  EXPECT_EQ(p.injected, 12);
  EXPECT_EQ(p.removed, 4);
  EXPECT_EQ(p.deficient, 2);
  EXPECT_EQ(p.min_per_cell, 5);
  EXPECT_EQ(p.max_per_cell, 61);
}

} // namespace
} // namespace ptatin
