// Binary checkpoint / restart of the time-stepping state.
//
// Long-term lithospheric runs are 1500-2000 time steps (§V-A); production
// use requires saving and resuming the full model state: mesh geometry (ALE
// deformed), velocity/pressure/temperature fields, and every material point
// with its history variables.
//
// Format: little-endian binary, magic + version header, length-prefixed
// arrays. The ModelSetup (materials, BCs, callbacks) is code, not data — a
// restart constructs the same model and then loads the state into it.
#pragma once

#include <string>

namespace ptatin {

class PtatinContext;

/// Write the full mutable state of `ctx` to `path`. Throws Error on I/O
/// failure.
void save_checkpoint(const std::string& path, const PtatinContext& ctx);

/// Restore state saved by save_checkpoint into a context built from the
/// same model setup. Validates mesh dimensions and field sizes; throws
/// Error on mismatch or corruption. Material points are re-located after
/// loading.
void load_checkpoint(const std::string& path, PtatinContext& ctx);

} // namespace ptatin
