#include "transport/memory.hpp"

#include <algorithm>

namespace ptatin::transport {

void InMemoryTransport::configure(Index num_ranks,
                                  const std::vector<ChannelDesc>& channels) {
  channels_ = channels;
  slots_.assign(channels.size(), Slot{});
  inbox_.assign(static_cast<std::size_t>(num_ranks), {});
  msg_seq_.assign(static_cast<std::size_t>(num_ranks),
                  std::vector<std::uint64_t>(num_ranks, 0));
  msg_round_.assign(static_cast<std::size_t>(num_ranks),
                    std::vector<std::uint64_t>(num_ranks, ~0ull));
}

void InMemoryTransport::begin_epoch() { ++epoch_; }

void InMemoryTransport::post(Index channel, const Real* data,
                             std::size_t count) {
  Slot& s = slots_[static_cast<std::size_t>(channel)];
  PT_ASSERT_MSG(count <= channels_[channel].max_reals,
                "posted payload exceeds channel bound");
  // Plain stores: distinct channels are posted by distinct threads, and the
  // caller's phase barrier orders every post before every collect.
  s.data = data;
  s.count = count;
  s.epoch = epoch_;
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(static_cast<long long>(count * sizeof(Real)),
                        std::memory_order_relaxed);
}

const Real* InMemoryTransport::collect(Index channel, std::size_t count) {
  const Slot& s = slots_[static_cast<std::size_t>(channel)];
  if (s.epoch != epoch_ || s.count != count)
    throw TransportError("in-memory transport: channel " +
                         std::to_string(channel) +
                         " was not posted this epoch");
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  bytes_received_.fetch_add(static_cast<long long>(count * sizeof(Real)),
                            std::memory_order_relaxed);
  return s.data;
}

void InMemoryTransport::send_message(Index src, Index dst, std::uint64_t round,
                                     const void* bytes, std::size_t len) {
  std::lock_guard<std::mutex> lock(msg_mu_);
  auto& seq = msg_seq_[src][dst];
  if (msg_round_[src][dst] != round) {
    msg_round_[src][dst] = round;
    seq = 0;
  }
  Message m;
  m.src = src;
  m.round = round;
  m.seq = seq++;
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  m.bytes.assign(p, p + len);
  inbox_[static_cast<std::size_t>(dst)].push_back(std::move(m));
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(static_cast<long long>(len),
                        std::memory_order_relaxed);
}

std::vector<Message> InMemoryTransport::receive_messages(Index dst,
                                                         std::size_t expected,
                                                         std::uint64_t round) {
  std::lock_guard<std::mutex> lock(msg_mu_);
  auto& box = inbox_[static_cast<std::size_t>(dst)];
  std::vector<Message> out;
  for (auto it = box.begin(); it != box.end();) {
    if (it->round == round) {
      out.push_back(std::move(*it));
      it = box.erase(it);
    } else {
      ++it;
    }
  }
  if (out.size() != expected)
    throw TransportError(
        "in-memory transport: rank " + std::to_string(dst) + " expected " +
        std::to_string(expected) + " messages for round " +
        std::to_string(round) + ", found " + std::to_string(out.size()));
  std::sort(out.begin(), out.end(), [](const Message& a, const Message& b) {
    return a.src != b.src ? a.src < b.src : a.seq < b.seq;
  });
  frames_received_.fetch_add(static_cast<long long>(out.size()),
                             std::memory_order_relaxed);
  for (const Message& m : out)
    bytes_received_.fetch_add(static_cast<long long>(m.bytes.size()),
                              std::memory_order_relaxed);
  return out;
}

TransportStats InMemoryTransport::stats() const {
  TransportStats s;
  s.backend = to_string(kind());
  s.workers = 0;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  return s;
}

void InMemoryTransport::reset_stats() {
  frames_sent_.store(0, std::memory_order_relaxed);
  frames_received_.store(0, std::memory_order_relaxed);
  bytes_sent_.store(0, std::memory_order_relaxed);
  bytes_received_.store(0, std::memory_order_relaxed);
}

} // namespace ptatin::transport
