#include "common/faultinject.hpp"

#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace ptatin::fault {

namespace {

/// splitmix64: tiny deterministic generator for the probabilistic mode.
double next_uniform(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return double(z >> 11) * 0x1.0p-53;
}

bool parse_kind(const std::string& s, FaultKind& kind) {
  if (s == "nan") kind = FaultKind::kNan;
  else if (s == "inf") kind = FaultKind::kInf;
  else if (s == "zero") kind = FaultKind::kZero;
  else if (s == "error") kind = FaultKind::kError;
  else return false;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

} // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector* fi = [] {
    auto* f = new FaultInjector();
    if (const char* env = std::getenv("PTATIN_FAULTS");
        env != nullptr && env[0] != '\0') {
      if (!f->arm_from_spec(env))
        log_warn("PTATIN_FAULTS: malformed spec ignored: ", env);
    }
    return f;
  }();
  return *fi;
}

FaultInjector::FaultInjector() = default;

const std::vector<SiteInfo>& FaultInjector::known_sites() {
  // Stable order: the chaos campaign's sweep and its CI log output follow it.
  static const std::vector<SiteInfo> sites = {
      {"ksp.rnorm", "corrupt a Krylov residual norm (NaN/Inf/0)"},
      {"ksp.breakdown", "force a Krylov algorithmic breakdown"},
      {"nonlin.rnorm", "corrupt a nonlinear residual norm"},
      {"nonlin.linsolve", "declare a linear solve fatally failed"},
      {"checkpoint.write", "throw from the checkpoint writer"},
      {"checkpoint.read", "throw from the checkpoint reader"},
      {"checkpoint.torn_write", "truncate a published checkpoint file"},
      {"checkpoint.bitflip", "flip one checkpoint payload bit post-CRC"},
      {"health.field_nan", "poison one velocity entry before a health pass"},
      {"transport.drop", "drop one transport frame"},
      {"transport.truncate", "truncate one transport frame"},
      {"transport.delay", "delay one transport frame past the timeout"},
      {"transport.worker_kill", "SIGKILL one transport worker"},
      {"sdc.field_bitflip", "flip a low mantissa bit of a sealed field"},
      {"sdc.particle_bitflip", "flip a low mantissa bit of a particle slab"},
      {"sdc.matrix_bitflip", "flip a bit in a sealed operator matrix"},
      {"sdc.krylov_drift", "drift the Krylov recurrence off the true "
                           "residual"},
  };
  return sites;
}

void FaultInjector::arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.push_back(Armed{std::move(spec), 0});
  enabled_.store(true, std::memory_order_relaxed);
}

bool FaultInjector::arm_from_spec(const std::string& spec) {
  std::vector<FaultSpec> parsed;
  for (const std::string& item : split(spec, ',')) {
    if (item.empty()) continue;
    const std::vector<std::string> f = split(item, ':');
    if (f.size() < 2 || f.size() > 4 || f[0].empty()) return false;
    FaultSpec fs;
    fs.site = f[0];
    try {
      fs.nth = std::stoll(f[1]);
    } catch (...) {
      return false;
    }
    if (fs.nth < 1) return false;
    if (f.size() >= 3 && !parse_kind(f[2], fs.kind)) return false;
    if (f.size() == 4) {
      if (f[3] == "*") {
        fs.count = -1;
      } else {
        try {
          fs.count = std::stoll(f[3]);
        } catch (...) {
          return false;
        }
        if (fs.count < 1) return false;
      }
    }
    parsed.push_back(std::move(fs));
  }
  if (parsed.empty()) return false;
  for (FaultSpec& fs : parsed) arm(std::move(fs));
  return true;
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Armed& a : armed_) {
    if (a.fired || a.spec.probability > 0.0) continue;
    // A spec that never fired usually means a typo'd site name or a count
    // the run never reached — either way the fault tested nothing.
    log_warn("fault spec armed at site '", a.spec.site, "' (nth=", a.spec.nth,
             ") never fired — ", a.calls, " call(s) observed; check the site "
             "name against -list_fault_sites");
  }
  armed_.clear();
  injected_.store(0, std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_relaxed);
}

std::vector<FaultSpec> FaultInjector::unfired() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultSpec> out;
  for (const Armed& a : armed_)
    if (!a.fired && a.spec.probability <= 0.0) out.push_back(a.spec);
  return out;
}

void FaultInjector::seed(std::uint64_t s) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = s;
}

const FaultSpec* FaultInjector::advance(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  const FaultSpec* firing = nullptr;
  for (Armed& a : armed_) {
    if (a.spec.site != site) continue;
    ++a.calls;
    bool fire;
    if (a.spec.probability > 0.0) {
      fire = a.calls >= a.spec.nth &&
             next_uniform(rng_state_) < a.spec.probability;
    } else {
      fire = a.calls >= a.spec.nth &&
             (a.spec.count < 0 || a.calls < a.spec.nth + a.spec.count);
    }
    if (fire) a.fired = true;
    if (fire && firing == nullptr) firing = &a.spec;
  }
  if (firing != nullptr) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    auto& metrics = obs::MetricsRegistry::instance();
    metrics.counter("fault.injected").inc();
    metrics.counter(std::string("fault.injected.") + site).inc();
    log_warn("fault injected at site '", site, "'");
  }
  return firing;
}

bool FaultInjector::fires(const char* site) { return advance(site) != nullptr; }

Real FaultInjector::corrupt(const char* site, Real value) {
  const FaultSpec* f = advance(site);
  if (f == nullptr) return value;
  switch (f->kind) {
    case FaultKind::kNan: return std::numeric_limits<Real>::quiet_NaN();
    case FaultKind::kInf: return std::numeric_limits<Real>::infinity();
    case FaultKind::kZero: return Real(0);
    case FaultKind::kError: break; // error faults do not corrupt values
  }
  return value;
}

void FaultInjector::maybe_fail(const char* site) {
  const FaultSpec* f = advance(site);
  if (f != nullptr && f->kind == FaultKind::kError)
    PT_THROW("injected fault at site '" << site << "'");
}

} // namespace ptatin::fault
