#include "stokes/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptatin {

void compute_element_geometry(const Real xe[kQ1NodesPerEl][3],
                              ElementGeometry& g) {
  const auto& geom = geom_tabulation();
  const auto& tab = q2_tabulation();
  for (int q = 0; q < kQuadPerEl; ++q) {
    // J_rd = d x_r / d xi_d = sum_v xe[v][r] dN_v/dxi_d.
    Mat3 J{};
    Real xq[3] = {0, 0, 0};
    for (int v = 0; v < kQ1NodesPerEl; ++v) {
      for (int r = 0; r < 3; ++r) {
        xq[r] += geom.N[q][v] * xe[v][r];
        for (int d = 0; d < 3; ++d) J[3 * r + d] += xe[v][r] * geom.dN[q][v][d];
      }
    }
    const Real det = det3(J);
    PT_DEBUG_ASSERT(det > 0.0);
    g.gamma[q] = inv3(J, det); // gamma_dr = d xi_d / d x_r
    g.wdetj[q] = tab.w[q] * det;
    for (int r = 0; r < 3; ++r) g.xq[q][r] = xq[r];
  }
}

P1Frame compute_p1_frame(const Real xe[kQ1NodesPerEl][3]) {
  P1Frame f{};
  for (int d = 0; d < 3; ++d) {
    Real lo = xe[0][d], hi = xe[0][d];
    for (int v = 1; v < kQ1NodesPerEl; ++v) {
      lo = std::min(lo, xe[v][d]);
      hi = std::max(hi, xe[v][d]);
    }
    f.center[d] = Real(0.5) * (lo + hi);
    const Real half = Real(0.5) * (hi - lo);
    f.scale[d] = half > 0 ? Real(1) / half : Real(1);
  }
  return f;
}

void element_geometry(const StructuredMesh& mesh, Index e, ElementGeometry& g) {
  Real xe[kQ1NodesPerEl][3];
  mesh.element_corner_coords(e, xe);
  compute_element_geometry(xe, g);
}

template <int W>
void element_geometry_batch(const StructuredMesh& mesh, const Index* elems,
                            ElementGeometryBatch<W>& g) {
  const auto& geom = geom_tabulation();
  const auto& tab = q2_tabulation();

  // Gather corner coordinates into lanes: xe[v][r][lane].
  alignas(kSimdAlign) Real xe[kQ1NodesPerEl][3][W];
  for (int l = 0; l < W; ++l) {
    Real xs[kQ1NodesPerEl][3];
    mesh.element_corner_coords(elems[l], xs);
    for (int v = 0; v < kQ1NodesPerEl; ++v)
      for (int r = 0; r < 3; ++r) xe[v][r][l] = xs[v][r];
  }

  for (int q = 0; q < kQuadPerEl; ++q) {
    // Per lane, the exact accumulation order of compute_element_geometry:
    // J[3r+d] += xe[v][r] dN[q][v][d], v-major. This file is compiled with
    // FP contraction pinned off (see CMakeLists.txt), so the lane-vectorized
    // det3/inv3 below rounds identically to the scalar path.
    alignas(kSimdAlign) Real J[9][W] = {};
    for (int v = 0; v < kQ1NodesPerEl; ++v)
      for (int r = 0; r < 3; ++r)
        for (int d = 0; d < 3; ++d) {
          const Real dn = geom.dN[q][v][d];
          PT_SIMD
          for (int l = 0; l < W; ++l) J[3 * r + d][l] += xe[v][r][l] * dn;
        }

    Real* ga = &g.gamma[q][0][0];
    Real* wd = g.wdetj[q];
    const Real wq = tab.w[q];
    alignas(kSimdAlign) Real det[W];
    PT_SIMD
    for (int l = 0; l < W; ++l)
      // det3 / inv3 of common/small_mat.hpp, expanded lane-wise with the
      // identical expression trees so rounding matches the scalar path.
      det[l] = J[0][l] * (J[4][l] * J[8][l] - J[5][l] * J[7][l]) -
               J[1][l] * (J[3][l] * J[8][l] - J[5][l] * J[6][l]) +
               J[2][l] * (J[3][l] * J[7][l] - J[4][l] * J[6][l]);
    for (int l = 0; l < W; ++l) PT_DEBUG_ASSERT(det[l] > 0.0);
    PT_SIMD
    for (int l = 0; l < W; ++l) {
      const Real id = Real(1) / det[l];
      ga[0 * W + l] = (J[4][l] * J[8][l] - J[5][l] * J[7][l]) * id;
      ga[1 * W + l] = (J[2][l] * J[7][l] - J[1][l] * J[8][l]) * id;
      ga[2 * W + l] = (J[1][l] * J[5][l] - J[2][l] * J[4][l]) * id;
      ga[3 * W + l] = (J[5][l] * J[6][l] - J[3][l] * J[8][l]) * id;
      ga[4 * W + l] = (J[0][l] * J[8][l] - J[2][l] * J[6][l]) * id;
      ga[5 * W + l] = (J[2][l] * J[3][l] - J[0][l] * J[5][l]) * id;
      ga[6 * W + l] = (J[3][l] * J[7][l] - J[4][l] * J[6][l]) * id;
      ga[7 * W + l] = (J[1][l] * J[6][l] - J[0][l] * J[7][l]) * id;
      ga[8 * W + l] = (J[0][l] * J[4][l] - J[1][l] * J[3][l]) * id;
      wd[l] = wq * det[l];
    }
  }
}

template void element_geometry_batch<4>(const StructuredMesh&, const Index*,
                                        ElementGeometryBatch<4>&);
template void element_geometry_batch<8>(const StructuredMesh&, const Index*,
                                        ElementGeometryBatch<8>&);

P1Frame element_p1_frame(const StructuredMesh& mesh, Index e) {
  Real xe[kQ1NodesPerEl][3];
  mesh.element_corner_coords(e, xe);
  return compute_p1_frame(xe);
}

} // namespace ptatin
