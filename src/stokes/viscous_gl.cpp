// Gauss-Lobatto collocated tensor-product operator (§III-D remark).
//
// "Spectral element methods typically perform a further optimization of
// choosing Gauss-Lobatto quadrature, for which B̂ is the identity. This
// reduces the flops in D_e by a factor of 3 but is not sufficiently accurate
// for our deformed meshes with variable coefficients."
//
// We implement the variant as an ablation: the 3-point Lobatto rule has its
// points AT the Q2 nodes, so basis interpolation disappears (B = I) and the
// gradient is a single 1D contraction per direction. The price is quadrature
// exactness degree 3 instead of 5 — the operator DIFFERS from the Galerkin
// one (see Ablation 6 in bench/ablation_solver.cpp and the accuracy tests).
#include "stokes/viscous_ops_gl.hpp"

#include "stokes/tensor_contract.hpp"

namespace ptatin {

namespace {

struct GlTabulation {
  Real D1[3][3];            ///< 1D derivative at the Lobatto points (= nodes)
  Real w[kQuadPerEl];       ///< tensorized Lobatto weights
  Real geomN[kQuadPerEl][kQ1NodesPerEl];
  Real geomdN[kQuadPerEl][kQ1NodesPerEl][3];
};

const GlTabulation& gl_tabulation() {
  static const GlTabulation tab = [] {
    GlTabulation t{};
    constexpr Real pts[3] = {-1.0, 0.0, 1.0};
    constexpr Real wts[3] = {1.0 / 3.0, 4.0 / 3.0, 1.0 / 3.0};
    for (int q = 0; q < 3; ++q)
      for (int a = 0; a < 3; ++a) t.D1[q][a] = q2_deriv_1d(a, pts[q]);
    for (int qz = 0; qz < 3; ++qz)
      for (int qy = 0; qy < 3; ++qy)
        for (int qx = 0; qx < 3; ++qx) {
          const int q = qx + 3 * qy + 9 * qz;
          t.w[q] = wts[qx] * wts[qy] * wts[qz];
          const Real xi[3] = {pts[qx], pts[qy], pts[qz]};
          q1_eval(xi, t.geomN[q]);
          q1_eval_deriv(xi, t.geomdN[q]);
        }
    return t;
  }();
  return tab;
}

} // namespace

void TensorGLViscousOperator::apply_unmasked(const Vector& x,
                                             Vector& y) const {
  const auto& tab = gl_tabulation();
  y.set_all(0.0);
  const Real* xp = x.data();
  Real* yp = y.data();

  for_each_element_colored(mesh_, [&](Index e) {
    Index nodes[kQ2NodesPerEl];
    mesh_.element_nodes(e, nodes);
    Real xe[kQ1NodesPerEl][3];
    mesh_.element_corner_coords(e, xe);

    Real u[3][kQ2NodesPerEl];
    for (int i = 0; i < kQ2NodesPerEl; ++i)
      for (int c = 0; c < 3; ++c) u[c][i] = xp[velocity_dof(nodes[i], c)];

    // With B = I, the reference gradient per direction is ONE contraction.
    Real gref[3][3][kQuadPerEl];
    for (int c = 0; c < 3; ++c) {
      tensor_kernel::contract_axis<false>(tab.D1, 0, u[c], gref[c][0]);
      tensor_kernel::contract_axis<false>(tab.D1, 1, u[c], gref[c][1]);
      tensor_kernel::contract_axis<false>(tab.D1, 2, u[c], gref[c][2]);
    }

    Real sref[3][3][kQuadPerEl];
    for (int q = 0; q < kQuadPerEl; ++q) {
      // Geometry at the Lobatto point.
      Mat3 J{};
      for (int v = 0; v < kQ1NodesPerEl; ++v)
        for (int r = 0; r < 3; ++r)
          for (int d = 0; d < 3; ++d)
            J[3 * r + d] += xe[v][r] * tab.geomdN[q][v][d];
      const Real det = det3(J);
      const Mat3 ga = inv3(J, det);
      const Real scale = tab.w[q] * det;

      Real G[3][3];
      for (int c = 0; c < 3; ++c)
        for (int r = 0; r < 3; ++r)
          G[c][r] = gref[c][0][q] * ga[0 + r] + gref[c][1][q] * ga[3 + r] +
                    gref[c][2][q] * ga[6 + r];

      const Real eta = coeff_.eta(e, q);
      const Real Dxx = G[0][0], Dyy = G[1][1], Dzz = G[2][2];
      const Real Dxy = Real(0.5) * (G[0][1] + G[1][0]);
      const Real Dxz = Real(0.5) * (G[0][2] + G[2][0]);
      const Real Dyz = Real(0.5) * (G[1][2] + G[2][1]);
      Real s[3][3];
      s[0][0] = 2 * eta * Dxx;
      s[1][1] = 2 * eta * Dyy;
      s[2][2] = 2 * eta * Dzz;
      s[0][1] = s[1][0] = 2 * eta * Dxy;
      s[0][2] = s[2][0] = 2 * eta * Dxz;
      s[1][2] = s[2][1] = 2 * eta * Dyz;

      for (int c = 0; c < 3; ++c)
        for (int d = 0; d < 3; ++d)
          sref[c][d][q] = scale * (s[c][0] * ga[3 * d + 0] +
                                   s[c][1] * ga[3 * d + 1] +
                                   s[c][2] * ga[3 * d + 2]);
    }

    Real ye[3][kQ2NodesPerEl];
    for (int c = 0; c < 3; ++c) {
      Real t1[27], t2[27], t3[27];
      tensor_kernel::contract_axis<true>(tab.D1, 0, sref[c][0], t1);
      tensor_kernel::contract_axis<true>(tab.D1, 1, sref[c][1], t2);
      tensor_kernel::contract_axis<true>(tab.D1, 2, sref[c][2], t3);
      for (int i = 0; i < 27; ++i) ye[c][i] = t1[i] + t2[i] + t3[i];
    }

    for (int i = 0; i < kQ2NodesPerEl; ++i)
      for (int c = 0; c < 3; ++c) yp[velocity_dof(nodes[i], c)] += ye[c][i];
  });
}

OperatorCostModel TensorGLViscousOperator::cost_model() const {
  // The gradient application shrinks 3x (one 1D sweep per direction instead
  // of three): the Tensor model's 2 x 4374 gradient flops become 2 x 1458,
  // everything else unchanged: 15228 - 2*(4374 - 1458) = 9396.
  return {9396.0, 1008.0, 2376.0};
}

} // namespace ptatin
