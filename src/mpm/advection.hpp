// Material point advection: D(Phi)/Dt = 0 (Eq. 6) realized by moving points
// through the FE velocity field with a second-order Runge-Kutta update.
#pragma once

#include "fem/mesh.hpp"
#include "la/vector.hpp"
#include "mpm/points.hpp"

namespace ptatin {

class SubdomainEngine;

struct AdvectionStats {
  Index advected = 0;
  Index left_domain = 0; ///< points whose midpoint/endpoint left the mesh
};

/// RK2 (midpoint) advection of all located points; positions are updated and
/// locations re-resolved. Points that exit the mesh keep their position but
/// have an invalid element (migration/deletion is the exchanger's job).
AdvectionStats advect_points_rk2(const StructuredMesh& mesh, const Vector& u,
                                 Real dt, MaterialPoints& points);

/// Subdomain-parallel variant (docs/PARALLELISM.md): points are binned by
/// owning subdomain and each subdomain advects its own points on the thread
/// team (§II-D). Per-point updates are independent, so results are bitwise
/// identical to the global sweep. Null engine = the global parallel loop.
AdvectionStats advect_points_rk2(const StructuredMesh& mesh, const Vector& u,
                                 Real dt, MaterialPoints& points,
                                 const SubdomainEngine* engine);

/// Forward-Euler variant (ablation / cheap paths).
AdvectionStats advect_points_euler(const StructuredMesh& mesh, const Vector& u,
                                   Real dt, MaterialPoints& points);

/// Stable advective time step: dt <= cfl * min(h_el / |u|_el).
Real compute_cfl_dt(const StructuredMesh& mesh, const Vector& u, Real cfl);

} // namespace ptatin
