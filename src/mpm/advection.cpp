#include "mpm/advection.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"
#include "fem/dofmap.hpp"
#include "fem/point_location.hpp"
#include "fem/subdomain_engine.hpp"
#include "stokes/fields.hpp"

namespace ptatin {

namespace {

struct Flags {
  std::vector<std::uint8_t> lost;
};

template <bool Rk2>
AdvectionStats advect_impl(const StructuredMesh& mesh, const Vector& u,
                           Real dt, MaterialPoints& points,
                           const SubdomainEngine* engine) {
  AdvectionStats stats;
  const Index n = points.size();
  std::vector<std::uint8_t> lost(n, 0);

  auto advance = [&](Index i) {
    Index e = points.element(i);
    if (e < 0) {
      lost[i] = 1;
      return;
    }
    const Vec3 x0 = points.position(i);
    const Vec3 v0 = interpolate_velocity(mesh, u, e, points.local_coord(i));

    Vec3 x1;
    if constexpr (Rk2) {
      // Midpoint rule: v evaluated at x0 + dt/2 v0.
      Vec3 xm{x0[0] + Real(0.5) * dt * v0[0], x0[1] + Real(0.5) * dt * v0[1],
              x0[2] + Real(0.5) * dt * v0[2]};
      const PointLocation lm = locate_point(mesh, xm, e);
      Vec3 vm = v0;
      if (lm.found) vm = interpolate_velocity(mesh, u, lm.element, lm.xi);
      x1 = Vec3{x0[0] + dt * vm[0], x0[1] + dt * vm[1], x0[2] + dt * vm[2]};
    } else {
      x1 = Vec3{x0[0] + dt * v0[0], x0[1] + dt * v0[1], x0[2] + dt * v0[2]};
    }

    points.set_position(i, x1);
    const PointLocation l1 = locate_point(mesh, x1, e);
    if (l1.found) {
      points.set_location(i, l1.element, l1.xi);
    } else {
      points.invalidate_location(i);
      lost[i] = 1;
    }
  };

  if (engine != nullptr) {
    // §II-D: each subdomain advects its own points. Per-point updates are
    // independent, so the partitioned sweep is bitwise identical to the
    // global parallel_for — the binning only changes which thread runs it.
    const Decomposition& decomp = engine->decomposition();
    std::vector<std::vector<Index>> bins(decomp.num_ranks());
    for (Index i = 0; i < n; ++i) {
      const Index e = points.element(i);
      if (e < 0) {
        lost[i] = 1;
        continue;
      }
      bins[decomp.rank_of_element(mesh, e)].push_back(i);
    }
    const Index S = decomp.num_ranks();
    parallel_for_phased(
        1, [S](int) { return S; },
        [&](int, Index s) {
          for (Index i : bins[s]) advance(i);
        });
  } else {
    parallel_for(n, advance);
  }

  for (Index i = 0; i < n; ++i) {
    if (lost[i]) {
      ++stats.left_domain;
    } else {
      ++stats.advected;
    }
  }
  return stats;
}

} // namespace

AdvectionStats advect_points_rk2(const StructuredMesh& mesh, const Vector& u,
                                 Real dt, MaterialPoints& points) {
  return advect_impl<true>(mesh, u, dt, points, nullptr);
}

AdvectionStats advect_points_rk2(const StructuredMesh& mesh, const Vector& u,
                                 Real dt, MaterialPoints& points,
                                 const SubdomainEngine* engine) {
  return advect_impl<true>(mesh, u, dt, points, engine);
}

AdvectionStats advect_points_euler(const StructuredMesh& mesh, const Vector& u,
                                   Real dt, MaterialPoints& points) {
  return advect_impl<false>(mesh, u, dt, points, nullptr);
}

Real compute_cfl_dt(const StructuredMesh& mesh, const Vector& u, Real cfl) {
  PT_ASSERT(u.size() == num_velocity_dofs(mesh));
  Real dt_min = std::numeric_limits<Real>::max();
  for (Index e = 0; e < mesh.num_elements(); ++e) {
    Vec3 lo, hi;
    mesh.element_bbox(e, lo, hi);
    const Real h =
        std::min({hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]});
    // Max nodal speed over the element.
    Index nodes[kQ2NodesPerEl];
    mesh.element_nodes(e, nodes);
    Real vmax = 0.0;
    for (int i = 0; i < kQ2NodesPerEl; ++i) {
      Real v2 = 0;
      for (int c = 0; c < 3; ++c) {
        const Real v = u[velocity_dof(nodes[i], c)];
        v2 += v * v;
      }
      vmax = std::max(vmax, std::sqrt(v2));
    }
    if (vmax > 0) dt_min = std::min(dt_min, h / vmax);
  }
  return cfl * (dt_min == std::numeric_limits<Real>::max() ? Real(1) : dt_min);
}

} // namespace ptatin
