#include "ptatin/scrub.hpp"

#include "common/sealed.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/report.hpp"

namespace ptatin::sdc {

std::vector<std::string> Scrubber::scrub_now() {
  PerfScope span("SdcScrub");
  ++scrubs_;
  obs::MetricsRegistry::instance().counter("sdc.scrubs").inc();
  ++obs::SolverReport::global().sdc().scrubs;
  return SealRegistry::instance().verify_all();
}

} // namespace ptatin::sdc
