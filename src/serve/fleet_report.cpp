#include "serve/fleet_report.hpp"

#include <fstream>

#include "obs/report.hpp"

namespace ptatin::serve {

obs::JsonValue FleetReport::to_json() const {
  obs::JsonValue j = obs::JsonValue::object();
  j["schema"] = obs::JsonValue(obs::kFleetReportSchema);

  obs::JsonValue jobs = obs::JsonValue::object();
  jobs["submitted"] = obs::JsonValue(submitted);
  jobs["completed"] = obs::JsonValue(completed);
  jobs["served_from_cache"] = obs::JsonValue(served_from_cache);
  jobs["evicted"] = obs::JsonValue(evicted);
  jobs["quarantined"] = obs::JsonValue(quarantined);
  jobs["preemptions"] = obs::JsonValue(preemptions);
  jobs["resumed"] = obs::JsonValue(resumed);
  j["jobs"] = std::move(jobs);

  obs::JsonValue queue = obs::JsonValue::object();
  queue["peak_depth"] = obs::JsonValue(queue_peak_depth);
  queue["final_depth"] = obs::JsonValue(queue_final_depth);
  j["queue"] = std::move(queue);

  obs::JsonValue lat = obs::JsonValue::object();
  lat["mean_s"] = obs::JsonValue(latency_mean);
  lat["p50_s"] = obs::JsonValue(latency_p50);
  lat["p90_s"] = obs::JsonValue(latency_p90);
  lat["p95_s"] = obs::JsonValue(latency_p95);
  lat["p99_s"] = obs::JsonValue(latency_p99);
  j["latency"] = std::move(lat);

  j["wall_seconds"] = obs::JsonValue(wall_seconds);
  j["throughput_jobs_per_s"] = obs::JsonValue(throughput_jobs_per_s);

  obs::JsonValue cache = obs::JsonValue::object();
  cache["hits"] = obs::JsonValue(cache_hits);
  cache["misses"] = obs::JsonValue(cache_misses);
  cache["evictions"] = obs::JsonValue(cache_evictions);
  cache["size"] = obs::JsonValue(cache_size);
  j["cache"] = std::move(cache);

  obs::JsonValue cores = obs::JsonValue::object();
  cores["max_concurrent"] = obs::JsonValue(max_concurrent);
  cores["total"] = obs::JsonValue(total_cores);
  cores["peak_in_use"] = obs::JsonValue(peak_cores_in_use);
  j["cores"] = std::move(cores);

  j["per_job"] = per_job;
  return j;
}

bool FleetReport::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json().dump(1) << "\n";
  return bool(f);
}

} // namespace ptatin::serve
