#include "energy/supg.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "fem/basis.hpp"
#include "fem/dofmap.hpp"
#include "ksp/gmres.hpp"
#include "ksp/pc.hpp"
#include "stokes/fields.hpp"

namespace ptatin {

namespace {

Real supg_tau(Real vnorm, Real h, Real kappa) {
  if (vnorm < 1e-14) return 0.0;
  const Real pe = vnorm * h / (Real(2) * std::max(kappa, Real(1e-300)));
  // coth(Pe) - 1/Pe, series-expanded for small Pe to avoid cancellation.
  Real xi;
  if (pe < 1e-4) {
    xi = pe / Real(3);
  } else {
    xi = Real(1) / std::tanh(pe) - Real(1) / pe;
  }
  return h / (Real(2) * vnorm) * xi;
}

} // namespace

EnergySolver::EnergySolver(const StructuredMesh& mesh, Real kappa,
                           std::function<Real(const Vec3&)> source)
    : mesh_(mesh), kappa_(kappa), source_(std::move(source)) {}

EnergySolveStats EnergySolver::step(
    const Vector& u, Real dt, const VertexBc& bc, Vector& T,
    const std::vector<Real>* element_source) const {
  PT_ASSERT(element_source == nullptr ||
            static_cast<Index>(element_source->size()) ==
                mesh_.num_elements());
  PT_ASSERT(T.size() == mesh_.num_vertices());
  PT_ASSERT(bc.size() == mesh_.num_vertices());
  EnergySolveStats stats;

  const auto& tab = q1_tabulation();
  const Index nv = mesh_.num_vertices();

  // Pattern: vertex-lattice 27-point neighborhoods via element loops.
  CsrPattern pattern(nv, nv);
  {
    Index verts[kQ1NodesPerEl];
    for (Index e = 0; e < mesh_.num_elements(); ++e) {
      mesh_.element_corner_vertices(e, verts);
      for (int a = 0; a < kQ1NodesPerEl; ++a)
        pattern.add_row_entries(verts[a], verts, kQ1NodesPerEl);
    }
  }
  CsrMatrix A = pattern.finalize();
  Vector rhs(nv, 0.0);

  const Real idt = Real(1) / dt;
  Index verts[kQ1NodesPerEl];
  for (Index e = 0; e < mesh_.num_elements(); ++e) {
    mesh_.element_corner_vertices(e, verts);
    Real xe[kQ1NodesPerEl][3];
    mesh_.element_corner_coords(e, xe);

    Vec3 lo, hi;
    mesh_.element_bbox(e, lo, hi);
    const Real h = std::cbrt((hi[0] - lo[0]) * (hi[1] - lo[1]) *
                             (hi[2] - lo[2]));

    Real Ae[kQ1NodesPerEl][kQ1NodesPerEl] = {};
    Real be[kQ1NodesPerEl] = {};

    for (int q = 0; q < QuadQ1::kPoints; ++q) {
      // Geometry at the Q1 quadrature point.
      Mat3 J{};
      Vec3 xq{0, 0, 0};
      for (int v = 0; v < kQ1NodesPerEl; ++v)
        for (int r = 0; r < 3; ++r) {
          xq[r] += tab.N[q][v] * xe[v][r];
          for (int d = 0; d < 3; ++d)
            J[3 * r + d] += xe[v][r] * tab.dN[q][v][d];
        }
      const Real det = det3(J);
      PT_DEBUG_ASSERT(det > 0);
      const Mat3 gi = inv3(J, det);
      const Real w = tab.w[q] * det;

      // Physical gradients of the Q1 basis.
      Real g[kQ1NodesPerEl][3];
      for (int v = 0; v < kQ1NodesPerEl; ++v)
        for (int r = 0; r < 3; ++r)
          g[v][r] = tab.dN[q][v][0] * gi[0 + r] + tab.dN[q][v][1] * gi[3 + r] +
                    tab.dN[q][v][2] * gi[6 + r];

      // Velocity at the quadrature point: locate its reference coordinate in
      // the Q2 element (the Q1 quadrature point in the same element e).
      const auto p = QuadQ1::point(q);
      const Vec3 vel =
          interpolate_velocity(mesh_, u, e, {p[0], p[1], p[2]});
      const Real vnorm =
          std::sqrt(vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
      const Real tau = supg_tau(vnorm, h, kappa_);
      stats.tau_max = std::max(stats.tau_max, tau);

      const Real old_T = [&] {
        Real t = 0;
        for (int v = 0; v < kQ1NodesPerEl; ++v) t += tab.N[q][v] * T[verts[v]];
        return t;
      }();
      Real src = source_ ? source_(xq) : 0.0;
      if (element_source != nullptr) src += (*element_source)[e];

      for (int i = 0; i < kQ1NodesPerEl; ++i) {
        // SUPG-augmented test function: N_i + tau u.grad(N_i).
        const Real ugi =
            vel[0] * g[i][0] + vel[1] * g[i][1] + vel[2] * g[i][2];
        const Real wi = tab.N[q][i] + tau * ugi;

        for (int j = 0; j < kQ1NodesPerEl; ++j) {
          const Real ugj =
              vel[0] * g[j][0] + vel[1] * g[j][1] + vel[2] * g[j][2];
          Real val = wi * (idt * tab.N[q][j] + ugj); // time + advection
          // Diffusion against the unstabilized gradient (Q1: second
          // derivatives vanish, so tau-weighted diffusion drops).
          val += kappa_ * (g[i][0] * g[j][0] + g[i][1] * g[j][1] +
                           g[i][2] * g[j][2]);
          Ae[i][j] += w * val;
        }
        be[i] += w * wi * (idt * old_T + src);
      }
    }

    for (int i = 0; i < kQ1NodesPerEl; ++i) {
      for (int j = 0; j < kQ1NodesPerEl; ++j)
        if (Ae[i][j] != 0.0) A.add_value(verts[i], verts[j], Ae[i][j]);
      rhs[verts[i]] += be[i];
    }
  }

  // Dirichlet rows.
  for (Index v = 0; v < nv; ++v) {
    if (!bc.is_constrained(v)) continue;
    A.zero_row_set_identity(v);
    rhs[v] = bc.value(v);
  }

  // Solve (nonsymmetric with advection): GMRES + ILU(0).
  MatrixOperator op(&A);
  Ilu0Pc pc(A);
  KrylovSettings s;
  s.rtol = 1e-10;
  s.max_it = 500;
  s.restart = 50;
  s.sentinel_every = sentinel_every_;
  s.sentinel_tol = sentinel_tol_;
  Vector Tn;
  Tn.copy_from(T); // warm start
  stats.linear = gmres_solve(op, pc, rhs, Tn, s);
  T.copy_from(Tn);
  return stats;
}

} // namespace ptatin
