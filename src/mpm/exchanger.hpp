// Material point migration between subdomains (§II-D).
//
// "If the point location routine determines that the material point is not
// located on the current subdomain, the material point is inserted into a
// list L_s. All material points in L_s are sent to all neighboring mesh
// subdomains, and the point location algorithm is reapplied to the newly
// received material points L_r. Material points in L_r which are not
// contained within the current mesh subdomain are deleted. This simple
// strategy enables the communication of material points between processors
// and permits material points to leave the domain if any outflow type
// boundary conditions are prescribed."
//
// The MPI substitution (DESIGN.md): ranks are in-memory subdomains; the
// send/receive lists are real data structures exercised identically.
#pragma once

#include <vector>

#include "fem/decomposition.hpp"
#include "mpm/points.hpp"

namespace ptatin {

/// A material point in flight between subdomains.
struct PointEnvelope {
  Vec3 x;
  int lithology;
  Real plastic_strain;
};

struct MigrationStats {
  Index sent = 0;      ///< points placed on some L_s
  Index received = 0;  ///< points adopted from some L_r
  Index deleted = 0;   ///< points deleted (left the global domain, or
                       ///< delivered to a neighborhood that does not own them)
};

/// Rank-local point container plus its subdomain identity.
struct RankPoints {
  Index rank = 0;
  MaterialPoints points;
};

/// Run the full migration protocol over all ranks: locate, build L_s lists,
/// deliver to neighbors, relocate L_r, delete unowned. Afterwards every
/// surviving point is located in an element owned by its holding rank.
MigrationStats migrate_points(const StructuredMesh& mesh,
                              const Decomposition& decomp,
                              std::vector<RankPoints>& ranks);

/// Partition a global point set into per-rank containers (initialization).
std::vector<RankPoints> distribute_points(const StructuredMesh& mesh,
                                          const Decomposition& decomp,
                                          const MaterialPoints& global);

/// Gather all rank-local points into one container (diagnostics, output).
MaterialPoints gather_points(const std::vector<RankPoints>& ranks);

} // namespace ptatin
