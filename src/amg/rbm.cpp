#include "amg/rbm.hpp"

namespace ptatin {

std::vector<Vector> rigid_body_modes(const std::vector<Real>& coords) {
  const Index nn = static_cast<Index>(coords.size()) / 3;
  // Centroid shift improves the conditioning of the per-aggregate QR.
  Real cx = 0, cy = 0, cz = 0;
  for (Index n = 0; n < nn; ++n) {
    cx += coords[3 * n];
    cy += coords[3 * n + 1];
    cz += coords[3 * n + 2];
  }
  cx /= Real(nn);
  cy /= Real(nn);
  cz /= Real(nn);

  std::vector<Vector> modes(6, Vector(3 * nn, 0.0));
  for (Index n = 0; n < nn; ++n) {
    const Real x = coords[3 * n] - cx;
    const Real y = coords[3 * n + 1] - cy;
    const Real z = coords[3 * n + 2] - cz;
    modes[0][3 * n + 0] = 1.0; // translations
    modes[1][3 * n + 1] = 1.0;
    modes[2][3 * n + 2] = 1.0;
    modes[3][3 * n + 0] = -y; // rotation about z
    modes[3][3 * n + 1] = x;
    modes[4][3 * n + 1] = -z; // rotation about x
    modes[4][3 * n + 2] = y;
    modes[5][3 * n + 0] = z; // rotation about y
    modes[5][3 * n + 2] = -x;
  }
  return modes;
}

std::vector<Vector> rigid_body_modes(const StructuredMesh& mesh) {
  return rigid_body_modes(mesh.coords());
}

} // namespace ptatin
