// Assembled viscous operator: CSR assembly + SpMV back-end.
//
// This is the baseline the paper measures against: between 81 and 375
// nonzeros per row (average 192 for interior nodes), all streamed through
// the memory bus on every application (§III-D, Table I "Assembled").
#include "stokes/viscous_ops.hpp"

namespace ptatin {

namespace {

/// Element stiffness: K[(i,c)(j,c')] = sum_q w detJ eta
/// (delta_cc' g_i.g_j + g_i[c'] g_j[c]), the Picard form.
void element_stiffness(const StructuredMesh& mesh, const QuadCoefficients& coeff,
                       Index e, Real Ke[3 * kQ2NodesPerEl][3 * kQ2NodesPerEl]) {
  const auto& tab = q2_tabulation();
  ElementGeometry g;
  element_geometry(mesh, e, g);

  for (int a = 0; a < 3 * kQ2NodesPerEl; ++a)
    for (int b = 0; b < 3 * kQ2NodesPerEl; ++b) Ke[a][b] = 0.0;

  for (int q = 0; q < kQuadPerEl; ++q) {
    const Mat3& ga = g.gamma[q];
    const Real scale = g.wdetj[q] * coeff.eta(e, q);
    Real gphys[kQ2NodesPerEl][3];
    for (int i = 0; i < kQ2NodesPerEl; ++i)
      for (int r = 0; r < 3; ++r)
        gphys[i][r] = tab.dN[q][i][0] * ga[0 + r] +
                      tab.dN[q][i][1] * ga[3 + r] + tab.dN[q][i][2] * ga[6 + r];

    for (int i = 0; i < kQ2NodesPerEl; ++i)
      for (int j = 0; j < kQ2NodesPerEl; ++j) {
        const Real gg = gphys[i][0] * gphys[j][0] + gphys[i][1] * gphys[j][1] +
                        gphys[i][2] * gphys[j][2];
        for (int c = 0; c < 3; ++c)
          for (int cp = 0; cp < 3; ++cp) {
            const Real v =
                scale * ((c == cp ? gg : Real(0)) + gphys[i][cp] * gphys[j][c]);
            Ke[3 * i + c][3 * j + cp] += v;
          }
      }
  }
}

} // namespace

CsrMatrix assemble_viscous_matrix(const StructuredMesh& mesh,
                                  const QuadCoefficients& coeff) {
  const Index nv = num_velocity_dofs(mesh);

  // Symbolic pattern: union of element dof couplings per row.
  CsrPattern pattern(nv, nv);
  {
    Index dofs[3 * kQ2NodesPerEl];
    for (Index e = 0; e < mesh.num_elements(); ++e) {
      element_velocity_dofs(mesh, e, dofs);
      for (int a = 0; a < 3 * kQ2NodesPerEl; ++a)
        pattern.add_row_entries(dofs[a], dofs, 3 * kQ2NodesPerEl);
    }
  }
  CsrMatrix a = pattern.finalize();

  // Numeric assembly: element colors prevent concurrent writes to a row.
  for_each_element_colored(mesh, [&](Index e) {
    Real Ke[3 * kQ2NodesPerEl][3 * kQ2NodesPerEl];
    element_stiffness(mesh, coeff, e, Ke);
    Index dofs[3 * kQ2NodesPerEl];
    element_velocity_dofs(mesh, e, dofs);
    for (int r = 0; r < 3 * kQ2NodesPerEl; ++r)
      for (int c = 0; c < 3 * kQ2NodesPerEl; ++c)
        if (Ke[r][c] != 0.0) a.add_value(dofs[r], dofs[c], Ke[r][c]);
  });
  return a;
}

AsmbViscousOperator::AsmbViscousOperator(const StructuredMesh& mesh,
                                         const QuadCoefficients& coeff,
                                         const DirichletBc* bc)
    : ViscousOperatorBase(mesh, coeff, bc),
      a_(assemble_viscous_matrix(mesh, coeff)) {
  if (bc_ != nullptr) bc_->apply_to_matrix_symmetric(a_);
}

OperatorCostModel AsmbViscousOperator::cost_model() const {
  // §III-D analytic model: 4608 nnz/element => 2 flops each; 37248 B
  // streamed per element with perfect vector caching.
  return {9216.0, 37248.0, 37248.0};
}

} // namespace ptatin
