// Triplet (COO) accumulator used to build general sparse matrices.
//
// FEM block assembly uses the pattern-based path in fem/assembler; COO is the
// general-purpose builder for interpolation operators, AMG prolongators, and
// tests. Duplicate (i,j) entries are summed on conversion to CSR.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace ptatin {

class CsrMatrix;

class CooMatrix {
public:
  CooMatrix(Index rows, Index cols) : rows_(rows), cols_(cols) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(vals_.size()); }

  void add(Index i, Index j, Real v);
  void reserve(std::size_t n);

  /// Sort by (row, col), merge duplicates (summing), and emit CSR.
  CsrMatrix to_csr() const;

private:
  Index rows_, cols_;
  std::vector<Index> is_, js_;
  std::vector<Real> vals_;
};

} // namespace ptatin
