// Unit tests for the smoothed-aggregation AMG: strength graph, aggregation,
// tentative prolongator invariants, and V-cycle convergence.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "amg/aggregation.hpp"
#include "amg/rbm.hpp"
#include "amg/sa_amg.hpp"
#include "common/rng.hpp"
#include "fem/bc.hpp"
#include "ksp/cg.hpp"
#include "ksp/gcr.hpp"
#include "la/coo.hpp"
#include "stokes/viscous_ops.hpp"

namespace ptatin {
namespace {

CsrMatrix laplacian3d(Index m) {
  // 7-point stencil on an m^3 grid.
  const Index n = m * m * m;
  auto id = [m](Index i, Index j, Index k) { return i + m * (j + m * k); };
  CooMatrix coo(n, n);
  for (Index k = 0; k < m; ++k)
    for (Index j = 0; j < m; ++j)
      for (Index i = 0; i < m; ++i) {
        const Index row = id(i, j, k);
        coo.add(row, row, 6.0);
        if (i > 0) coo.add(row, id(i - 1, j, k), -1.0);
        if (i + 1 < m) coo.add(row, id(i + 1, j, k), -1.0);
        if (j > 0) coo.add(row, id(i, j - 1, k), -1.0);
        if (j + 1 < m) coo.add(row, id(i, j + 1, k), -1.0);
        if (k > 0) coo.add(row, id(i, j, k - 1), -1.0);
        if (k + 1 < m) coo.add(row, id(i, j, k + 1), -1.0);
      }
  return coo.to_csr();
}

// --- strength graph / aggregation --------------------------------------------

TEST(Strength, UniformStencilAllStrong) {
  CsrMatrix a = laplacian3d(4);
  CsrMatrix s = build_strength_graph(a, 1, 0.01);
  // All off-diagonal connections of the uniform stencil are strong.
  EXPECT_EQ(s.nnz(), a.nnz() - a.rows());
}

TEST(Strength, ThresholdDropsWeakConnections) {
  // Anisotropic stencil: weak coupling in one direction is filtered out at a
  // high threshold.
  CooMatrix coo(9, 9);
  for (Index i = 0; i < 9; ++i) coo.add(i, i, 2.0);
  for (Index i = 0; i + 1 < 9; ++i) {
    coo.add(i, i + 1, -1.0);
    coo.add(i + 1, i, -1.0);
  }
  for (Index i = 0; i + 3 < 9; ++i) {
    coo.add(i, i + 3, -1e-4);
    coo.add(i + 3, i, -1e-4);
  }
  CsrMatrix a = coo.to_csr();
  CsrMatrix s = build_strength_graph(a, 1, 0.01);
  EXPECT_EQ(s.find(0, 3), nullptr); // weak connection dropped
  EXPECT_NE(s.find(0, 1), nullptr); // strong connection kept
}

TEST(Aggregation, CoversAllNodes) {
  CsrMatrix a = laplacian3d(5);
  CsrMatrix s = build_strength_graph(a, 1, 0.01);
  Index nagg = 0;
  std::vector<Index> agg = aggregate_nodes(s, nagg);
  EXPECT_GT(nagg, 0);
  EXPECT_LT(nagg, a.rows()); // real coarsening
  std::set<Index> used;
  for (Index v : agg) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, nagg);
    used.insert(v);
  }
  EXPECT_EQ(static_cast<Index>(used.size()), nagg); // no empty aggregates
}

TEST(Aggregation, IsolatedNodeBecomesSingleton) {
  CooMatrix coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 2.0);
  coo.add(1, 2, -1.0);
  coo.add(2, 1, -1.0);
  coo.add(2, 2, 2.0);
  coo.add(3, 3, 1.0);
  CsrMatrix s = build_strength_graph(coo.to_csr(), 1, 0.01);
  Index nagg = 0;
  std::vector<Index> agg = aggregate_nodes(s, nagg);
  EXPECT_EQ(nagg, 3); // {1,2} pair + singletons {0}, {3}
}

// --- rigid body modes ----------------------------------------------------------

TEST(Rbm, ModesAnnihilatedByViscousOperator) {
  StructuredMesh mesh = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff(mesh.num_elements());
  TensorViscousOperator op(mesh, coeff, nullptr);
  auto modes = rigid_body_modes(mesh);
  ASSERT_EQ(modes.size(), 6u);
  for (const auto& m : modes) {
    Vector am;
    op.apply(m, am);
    EXPECT_LT(am.norm_inf(), 1e-10 * std::max(Real(1), m.norm_inf()));
  }
}

// --- SA-AMG ---------------------------------------------------------------------

TEST(SaAmg, ConvergesOnScalarLaplacian) {
  CsrMatrix a = laplacian3d(8);
  AmgOptions opts;
  opts.block_size = 1;
  opts.coarse_size = 20;
  SaAmg amg(a, {}, opts);
  EXPECT_GE(amg.num_levels(), 2);

  Rng rng(1);
  Vector b(a.rows());
  for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  Vector x;
  KrylovSettings s;
  s.rtol = 1e-8;
  s.max_it = 60;
  SolveStats st = cg_solve(MatrixOperator(&a), amg, b, x, s);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(st.iterations, 25);
}

TEST(SaAmg, SmoothedBeatsUnsmoothed) {
  CsrMatrix a = laplacian3d(8);
  auto iters = [&](bool smoothed) {
    AmgOptions opts;
    opts.block_size = 1;
    opts.coarse_size = 20;
    opts.smoothed = smoothed;
    SaAmg amg(a, {}, opts);
    Rng rng(2);
    Vector b(a.rows());
    for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
    Vector x;
    KrylovSettings s;
    s.rtol = 1e-8;
    s.max_it = 200;
    return cg_solve(MatrixOperator(&a), amg, b, x, s).iterations;
  };
  EXPECT_LE(iters(true), iters(false));
}

TEST(SaAmg, ConvergesOnViscousBlockWithRbms) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff(mesh.num_elements());
  // Mild viscosity variation.
  Rng crng(3);
  for (Index e = 0; e < mesh.num_elements(); ++e)
    for (int q = 0; q < kQuadPerEl; ++q)
      coeff.eta(e, q) = std::pow(10.0, crng.uniform(-1, 1));
  DirichletBc bc = sinker_boundary_conditions(mesh);
  AsmbViscousOperator op(mesh, coeff, &bc);

  AmgOptions opts;
  opts.block_size = 3;
  opts.coarse_size = 60;
  SaAmg amg(op.matrix(), rigid_body_modes(mesh), opts);
  EXPECT_GE(amg.num_levels(), 2);

  Rng rng(4);
  Vector b(op.rows());
  for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  bc.zero_constrained(b);
  Vector x;
  KrylovSettings s;
  s.rtol = 1e-6;
  s.max_it = 100;
  SolveStats st = gcr_solve(op, amg, b, x, s);
  EXPECT_TRUE(st.converged);
}

TEST(SaAmg, RbmsImproveConvergenceOverConstants) {
  StructuredMesh mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff(mesh.num_elements());
  DirichletBc bc = sinker_boundary_conditions(mesh);
  AsmbViscousOperator op(mesh, coeff, &bc);

  auto iters = [&](const std::vector<Vector>& nns) {
    AmgOptions opts;
    opts.block_size = 3;
    opts.coarse_size = 60;
    SaAmg amg(op.matrix(), nns, opts);
    Rng rng(5);
    Vector b(op.rows());
    for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
    bc.zero_constrained(b);
    Vector x;
    KrylovSettings s;
    s.rtol = 1e-6;
    s.max_it = 200;
    return gcr_solve(op, amg, b, x, s).iterations;
  };
  EXPECT_LE(iters(rigid_body_modes(mesh)), iters({}) + 2);
}

TEST(SaAmg, OperatorComplexityIsBounded) {
  CsrMatrix a = laplacian3d(10);
  AmgOptions opts;
  opts.block_size = 1;
  opts.coarse_size = 20;
  SaAmg amg(a, {}, opts);
  EXPECT_GE(amg.operator_complexity(), 1.0);
  EXPECT_LT(amg.operator_complexity(), 3.0);
}

TEST(SaAmg, KrylovIluSmootherConfigWorks) {
  // The SAML-ii style configuration: FGMRES(2) + block ILU(0) smoothing and
  // an inexact Krylov coarsest solve.
  CsrMatrix a = laplacian3d(8);
  AmgOptions opts;
  opts.block_size = 1;
  opts.coarse_size = 30;
  opts.smoother = AmgSmoother::kKrylovIlu;
  opts.coarsest = AmgCoarsestSolve::kInexactKrylov;
  SaAmg amg(a, {}, opts);
  Rng rng(6);
  Vector b(a.rows());
  for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  Vector x;
  KrylovSettings s;
  s.rtol = 1e-8;
  s.max_it = 80;
  SolveStats st = gcr_solve(MatrixOperator(&a), amg, b, x, s);
  EXPECT_TRUE(st.converged);
}

TEST(SaAmg, TwoLevelUnsmoothedConverges) {
  // A two-level unsmoothed-aggregation hierarchy with the rigid-body
  // near-nullspace remains a convergent preconditioner on the constrained
  // viscous block.
  StructuredMesh mesh = StructuredMesh::box(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff(mesh.num_elements());
  DirichletBc bc = sinker_boundary_conditions(mesh);
  AsmbViscousOperator op(mesh, coeff, &bc);
  AmgOptions opts;
  opts.block_size = 3;
  opts.max_levels = 2;
  opts.coarse_size = 10; // force exactly one coarsening
  opts.smoothed = false;
  SaAmg amg(op.matrix(), rigid_body_modes(mesh), opts);
  ASSERT_EQ(amg.num_levels(), 2);

  Rng rng(7);
  Vector b(op.rows());
  for (Index i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  bc.zero_constrained(b);
  Vector x;
  KrylovSettings s;
  s.rtol = 1e-6;
  s.max_it = 150;
  SolveStats st = gcr_solve(op, amg, b, x, s);
  EXPECT_TRUE(st.converged);
}

} // namespace
} // namespace ptatin
