#include "fem/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.hpp"
#include "fem/basis.hpp"

namespace ptatin {

StructuredMesh StructuredMesh::box(Index mx, Index my, Index mz, const Vec3& lo,
                                   const Vec3& hi) {
  PT_ASSERT(mx >= 1 && my >= 1 && mz >= 1);
  StructuredMesh m;
  m.mx_ = mx;
  m.my_ = my;
  m.mz_ = mz;
  m.coords_.resize(3 * m.num_nodes());
  const Index nx = m.nx(), ny = m.ny(), nz = m.nz();
  for (Index k = 0; k < nz; ++k)
    for (Index j = 0; j < ny; ++j)
      for (Index i = 0; i < nx; ++i) {
        const Index n = m.node_index(i, j, k);
        m.coords_[3 * n + 0] = lo[0] + (hi[0] - lo[0]) * Real(i) / Real(nx - 1);
        m.coords_[3 * n + 1] = lo[1] + (hi[1] - lo[1]) * Real(j) / Real(ny - 1);
        m.coords_[3 * n + 2] = lo[2] + (hi[2] - lo[2]) * Real(k) / Real(nz - 1);
      }
  return m;
}

void StructuredMesh::element_nodes(Index e, Index out[kQ2NodesPerEl]) const {
  Index ei, ej, ek;
  element_ijk(e, ei, ej, ek);
  int t = 0;
  for (Index c = 0; c < 3; ++c)
    for (Index b = 0; b < 3; ++b)
      for (Index a = 0; a < 3; ++a)
        out[t++] = node_index(2 * ei + a, 2 * ej + b, 2 * ek + c);
}

void StructuredMesh::element_corners(Index e, Index out[kQ1NodesPerEl]) const {
  Index ei, ej, ek;
  element_ijk(e, ei, ej, ek);
  int t = 0;
  for (Index c = 0; c < 2; ++c)
    for (Index b = 0; b < 2; ++b)
      for (Index a = 0; a < 2; ++a)
        out[t++] = node_index(2 * (ei + a), 2 * (ej + b), 2 * (ek + c));
}

void StructuredMesh::element_corner_vertices(Index e,
                                             Index out[kQ1NodesPerEl]) const {
  Index ei, ej, ek;
  element_ijk(e, ei, ej, ek);
  int t = 0;
  for (Index c = 0; c < 2; ++c)
    for (Index b = 0; b < 2; ++b)
      for (Index a = 0; a < 2; ++a)
        out[t++] = vertex_index(ei + a, ej + b, ek + c);
}

void StructuredMesh::element_corner_coords(Index e,
                                           Real xe[kQ1NodesPerEl][3]) const {
  Index corners[kQ1NodesPerEl];
  element_corners(e, corners);
  for (int v = 0; v < kQ1NodesPerEl; ++v) {
    const Index n = corners[v];
    xe[v][0] = coords_[3 * n + 0];
    xe[v][1] = coords_[3 * n + 1];
    xe[v][2] = coords_[3 * n + 2];
  }
}

void StructuredMesh::deform(const std::function<Vec3(const Vec3&)>& f) {
  parallel_for(num_nodes(), [&](Index n) {
    const Vec3 x = node_coord(n);
    const Vec3 y = f(x);
    coords_[3 * n + 0] = y[0];
    coords_[3 * n + 1] = y[1];
    coords_[3 * n + 2] = y[2];
  });
}

Vec3 StructuredMesh::map_to_physical(Index e, const Vec3& xi) const {
  Real xe[kQ1NodesPerEl][3];
  element_corner_coords(e, xe);
  Real N[kQ1NodesPerEl];
  const Real p[3] = {xi[0], xi[1], xi[2]};
  q1_eval(p, N);
  Vec3 x{0, 0, 0};
  for (int v = 0; v < kQ1NodesPerEl; ++v)
    for (int d = 0; d < 3; ++d) x[d] += N[v] * xe[v][d];
  return x;
}

StructuredMesh StructuredMesh::coarsen() const {
  PT_ASSERT_MSG(can_coarsen(), "mesh dimensions must be even to coarsen");
  StructuredMesh c;
  c.mx_ = mx_ / 2;
  c.my_ = my_ / 2;
  c.mz_ = mz_ / 2;
  c.coords_.resize(3 * c.num_nodes());
  // Injection: coarse node (i,j,k) takes the coordinates of fine node
  // (2i, 2j, 2k).
  for (Index k = 0; k < c.nz(); ++k)
    for (Index j = 0; j < c.ny(); ++j)
      for (Index i = 0; i < c.nx(); ++i) {
        const Index cn = c.node_index(i, j, k);
        const Index fn = node_index(2 * i, 2 * j, 2 * k);
        for (int d = 0; d < 3; ++d) c.coords_[3 * cn + d] = coords_[3 * fn + d];
      }
  return c;
}

void StructuredMesh::element_bbox(Index e, Vec3& lo, Vec3& hi) const {
  Real xe[kQ1NodesPerEl][3];
  element_corner_coords(e, xe);
  for (int d = 0; d < 3; ++d) {
    lo[d] = hi[d] = xe[0][d];
    for (int v = 1; v < kQ1NodesPerEl; ++v) {
      lo[d] = std::min(lo[d], xe[v][d]);
      hi[d] = std::max(hi[d], xe[v][d]);
    }
  }
}

Real StructuredMesh::volume() const {
  const auto& geom = geom_tabulation();
  const auto& tab = q2_tabulation();
  return parallel_reduce_sum(num_elements(), [&](Index e) {
    Real xe[kQ1NodesPerEl][3];
    element_corner_coords(e, xe);
    Real vol = 0.0;
    for (int q = 0; q < kQuadPerEl; ++q) {
      Mat3 J{};
      for (int v = 0; v < kQ1NodesPerEl; ++v)
        for (int r = 0; r < 3; ++r)
          for (int d = 0; d < 3; ++d)
            J[3 * r + d] += xe[v][r] * geom.dN[q][v][d];
      vol += tab.w[q] * det3(J);
    }
    return vol;
  });
}

Real StructuredMesh::element_min_jacobian(Index e) const {
  const auto& geom = geom_tabulation();
  Real xe[kQ1NodesPerEl][3];
  element_corner_coords(e, xe);
  Real mn = std::numeric_limits<Real>::max();
  for (int q = 0; q < kQuadPerEl; ++q) {
    Mat3 J{};
    for (int v = 0; v < kQ1NodesPerEl; ++v)
      for (int r = 0; r < 3; ++r)
        for (int d = 0; d < 3; ++d)
          J[3 * r + d] += xe[v][r] * geom.dN[q][v][d];
    mn = std::min(mn, det3(J));
  }
  return mn;
}

} // namespace ptatin
