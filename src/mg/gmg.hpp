// Geometric multigrid hierarchy for the viscous block J_uu (§III-C).
//
// The production configuration of the paper: the finest level is applied
// matrix-free (MF / Tens / TensC), the next level is assembled by
// rediscretization, levels below it are Galerkin triple products of the
// assembled level, and the coarsest level is handed to a pluggable coarse
// solver (block-Jacobi+LU, smoothed-aggregation AMG, or an inexact Krylov
// solve — §IV-A, §IV-C, §V-A). Every level smooths with Jacobi-preconditioned
// Chebyshev targeting [0.2 λmax, 1.1 λmax].
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/sealed.hpp"
#include "fem/bc.hpp"
#include "fem/mesh.hpp"
#include "ksp/chebyshev.hpp"
#include "ksp/pc.hpp"
#include "la/galerkin.hpp"
#include "mg/coarsen.hpp"
#include "mg/prolongation.hpp"
#include "obs/metrics.hpp"
#include "stokes/viscous_ops.hpp"

namespace ptatin {

/// Setup state that survives hierarchy rebuilds. A GmgHierarchy is
/// solve-scoped (each Newton step constructs a fresh one), but the Galerkin
/// RAP patterns only depend on the mesh topology — so a caller that owns one
/// of these across rebuilds (NonlinearStokesSolver does) turns every
/// repeated coarse-operator assembly into a numeric-only refresh
/// (la/galerkin.hpp). Stale entries self-heal: GalerkinProduct validates its
/// inputs and falls back to a full setup on any pattern change.
struct GmgSetupCache {
  std::vector<GalerkinProduct> rap; ///< indexed by coarse level
};

// FineOperatorType lives in stokes/viscous_ops.hpp (included above) next to
// the make_viscous_backend factory; this header re-exports it transitively
// for the existing call sites.

/// How operators below the finest level are built.
enum class CoarseOperatorType {
  kGalerkin,       ///< assemble level L-2 by rediscretization, RAP below
  kRediscretized,  ///< rediscretize (and assemble) every coarse level
};

struct GmgOptions {
  int levels = 3;
  /// The finest-level kernel description (backend, order, SIMD batch width,
  /// subdomain engine — fem/kernel_registry.hpp). Batched applies are
  /// bitwise identical to scalar, so width is a pure perf knob. The engine
  /// applies to the finest level only — coarse levels stay on the global
  /// path (their assembled SpMV has no element sweep, and the engine's halo
  /// plans only match the finest element grid). The hierarchy requires
  /// order == 2 (coarsening/BC layers are tied to the Q2 lattice).
  KernelSpec fine_kernel;

  /// Deprecated views onto `fine_kernel` (one-time warning on write). Use
  /// fine_kernel.type / fine_kernel.batch_width / fine_kernel.engine.
  DeprecatedKernelField<FineOperatorType> fine_type{
      &fine_kernel.type, "GmgOptions::fine_type", "fine_kernel.type"};
  DeprecatedKernelField<int> batch_width{
      &fine_kernel.batch_width, "GmgOptions::batch_width",
      "fine_kernel.batch_width"};
  DeprecatedKernelField<const SubdomainEngine*> fine_decomp{
      &fine_kernel.engine, "GmgOptions::fine_decomp", "fine_kernel.engine"};
  CoarseOperatorType coarse_type = CoarseOperatorType::kGalerkin;
  int smooth_pre = 2;  ///< V(2,2) by default (§IV-A)
  int smooth_post = 2;
  ChebyshevOptions chebyshev;
  /// Number of V-cycles per preconditioner application (paper: 1).
  int cycles_per_apply = 1;
  /// Recursion count per level: 1 = V-cycle (the paper's choice), 2 =
  /// W-cycle (ablation; more coarse work per application).
  int cycle_gamma = 1;
  /// Register the assembled coarse operators and prolongations with the SDC
  /// seal registry (docs/ROBUSTNESS.md): these matrices are setup-immutable,
  /// so the periodic scrubber can detect a flipped bit in them. Enabled by
  /// the config layer when -scrub_every > 0; off by default to keep the CRC
  /// pass out of setups that never scrub.
  bool seal_operators = false;
  /// Borrowed cross-rebuild setup cache (may be null = no caching). With
  /// `rap_cache`, Galerkin products replay numeric-only against the cached
  /// sparsity patterns — bitwise identical to the from-scratch ptap.
  GmgSetupCache* setup_cache = nullptr;
  bool rap_cache = true;
  /// Route coarse-level applies through the blocked SELL-8 SpMV
  /// (la/blocked_spmv.hpp); bitwise identical to plain CSR, pure perf knob.
  bool blocked_spmv = true;
};

/// Deepest usable hierarchy for an m^3 element mesh: coarsen while the
/// element count stays even and the coarse level keeps >= 3 elements per
/// direction (a 2^3 coarsest level is too small to help).
inline int suggest_gmg_levels(Index m, int max_levels = 3) {
  int levels = 1;
  while (levels < max_levels && m % 2 == 0 && m / 2 >= 3) {
    m /= 2;
    ++levels;
  }
  return levels;
}

/// Factory building the coarsest-level solver from the coarsest assembled
/// matrix (wired by the caller; an AMG factory lives in src/amg).
using CoarseSolverFactory =
    std::function<std::unique_ptr<Preconditioner>(const CsrMatrix&)>;

/// Factory recreating the problem's boundary conditions on a coarse mesh.
using BcFactory = std::function<DirichletBc(const StructuredMesh&)>;

class GmgHierarchy : public Preconditioner {
public:
  /// Build the hierarchy. The finest mesh/coefficients/BC are borrowed and
  /// must outlive the hierarchy.
  GmgHierarchy(const StructuredMesh& fine_mesh,
               const QuadCoefficients& fine_coeff, const DirichletBc& fine_bc,
               const GmgOptions& opts, const BcFactory& bc_factory,
               const CoarseSolverFactory& coarse_factory);

  /// Preconditioner interface: z ~ A^{-1} r via cycles_per_apply V-cycles
  /// from a zero initial guess.
  void apply(const Vector& r, Vector& z) const override;

  /// One V-cycle updating x in place (nonzero initial guess allowed).
  void vcycle(const Vector& b, Vector& x) const;

  /// The finest-level operator (the smoother operator; its apply is the MG
  /// residual kernel timed as "MG res" in Table III).
  const ViscousOperatorBase& fine_operator() const {
    return *levels_.back().elem_op;
  }

  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Setup time spent assembling Galerkin products (reported in Table IV as
  /// the extra R^T A R cost). Sum of the setup and refresh buckets below.
  double galerkin_setup_seconds() const { return galerkin_seconds_; }

  /// RAP time split by path: full symbolic+numeric setups vs numeric-only
  /// refreshes served by the GmgSetupCache.
  double rap_setup_seconds() const { return rap_setup_seconds_; }
  double rap_refresh_seconds() const { return rap_refresh_seconds_; }
  long rap_setups() const { return rap_setups_; }
  long rap_refreshes() const { return rap_refreshes_; }

  Index level_dofs(int level) const { return levels_[level].ndofs; }

  /// Verify the operator seal now (empty when intact or seal_operators is
  /// off). Solve-scoped hierarchies die before the periodic scrubber runs,
  /// so the Stokes solver checks this after every solve.
  std::vector<std::string> verify_seal() const { return seal_.verify(); }

private:
  struct Level {
    StructuredMesh mesh;    ///< owned copy (fine level included)
    QuadCoefficients coeff; ///< rediscretized coefficients
    DirichletBc bc;
    /// Finest level: a typed element-kernel operator (Asmb/MF/Tens/TensC).
    std::unique_ptr<ViscousOperatorBase> elem_op;
    /// Coarse levels: assembled matrix (rediscretized or Galerkin).
    std::unique_ptr<CsrMatrix> assembled;
    std::unique_ptr<MatrixOperator> mat_op;
    const LinearOperator* op = nullptr; ///< operator the smoother uses
    CsrMatrix prolongation; ///< to the next finer level (absent on finest)
    /// Explicit P^T, built once at setup so the per-cycle restriction is a
    /// row-parallel CSR mult instead of the serial mult_transpose scatter.
    CsrMatrix restriction;
    ChebyshevSmoother smoother;
    Index ndofs = 0;
    mutable Vector r, e, rc, ec; // per-level cycle workspace (no per-call
                                 // allocation on the V-cycle hot path)
  };

  void cycle(int level, const Vector& b, Vector& x) const;

  std::vector<Level> levels_; ///< [0] = coarsest ... [L-1] = finest
  std::unique_ptr<Preconditioner> coarse_solver_;
  GmgOptions opts_;
  double galerkin_seconds_ = 0.0;
  double rap_setup_seconds_ = 0.0, rap_refresh_seconds_ = 0.0;
  long rap_setups_ = 0, rap_refreshes_ = 0;
  /// Captured once: counter lookup by name allocates for long names.
  obs::Counter* restrict_counter_ = nullptr;
  obs::Counter* prolong_counter_ = nullptr;
  sdc::ScopedSeal seal_; ///< over the assembled/prolongation arrays
};

} // namespace ptatin
