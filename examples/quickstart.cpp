// Quickstart: solve one heterogeneous variable-viscosity Stokes problem with
// the production preconditioner (GCR + lower-triangular fieldsplit + hybrid
// geometric/algebraic multigrid with a matrix-free tensor-product fine
// level) and print a convergence summary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [-m 8] [-contrast 1e4]
#include <cstdio>

#include "common/options.hpp"
#include "ptatin/models_sinker.hpp"
#include "saddle/stokes_solver.hpp"
#include "stokes/fields.hpp"

using namespace ptatin;

int main(int argc, char** argv) {
  Options opts = Options::from_args(argc, argv);
  const Index m = opts.get_index("m", 8);
  const Real contrast = opts.get_real("contrast", 1e3);

  // 1. A structured, deformable Q2 mesh of the unit box.
  StructuredMesh mesh = StructuredMesh::box(m, m, m, {0, 0, 0}, {1, 1, 1});

  // 2. The sinker coefficient field: 8 dense, viscous spheres in a weak
  //    ambient fluid (viscosity jump = `contrast`).
  SinkerParams sp;
  sp.mx = sp.my = sp.mz = m;
  sp.contrast = contrast;
  QuadCoefficients coeff = sinker_coefficients(mesh, sp);

  // 3. Free-slip walls, free surface on top.
  DirichletBc bc = sinker_boundary_conditions(mesh);

  // 4. Solver: defaults reproduce the paper's production configuration.
  StokesSolverOptions so;
  so.kernel.type = FineOperatorType::kTensor; // matrix-free tensor-product A
  so.gmg.levels = suggest_gmg_levels(m);
  so.coarse_solve = GmgCoarseSolve::kAmg; // SA-AMG coarse-grid solver
  so.amg.coarse_size = 400;
  so.krylov.rtol = 1e-5;                  // unpreconditioned relative tol
  StokesSolver solver(mesh, coeff, bc, so);

  // 5. Buoyancy drives the flow: f = rho * g.
  Vector f = assemble_body_force(mesh, coeff, {0, 0, -9.8});
  StokesSolveResult res = solver.solve(f);

  std::printf("pTatin3D quickstart — sinker problem\n");
  std::printf("  mesh:            %lld^3 Q2 elements (%lld velocity + %lld "
              "pressure dofs)\n",
              (long long)m, (long long)num_velocity_dofs(mesh),
              (long long)num_pressure_dofs(mesh));
  std::printf("  viscosity:       [%.2e, %.2e]\n", coeff.eta_min(),
              coeff.eta_max());
  std::printf("  converged:       %s in %d GCR iterations (rtol 1e-5)\n",
              res.stats.converged ? "yes" : "NO", res.stats.iterations);
  std::printf("  PC setup:        %.2f s,  solve: %.2f s\n",
              res.setup_seconds, res.solve_seconds);
  std::printf("  max |u|:         %.4e\n", res.u.norm_inf());
  std::printf("  div(u) L2:       %.3e\n", divergence_l2(mesh, res.u));
  return res.stats.converged ? 0 : 1;
}
