// Verification: h-convergence on a manufactured trigonometric Stokes
// solution, W-cycle behaviour, and shear heating.
#include <gtest/gtest.h>

#include <cmath>

#include "ksp/gcr.hpp"
#include "ptatin/context.hpp"
#include "ptatin/models_sinker.hpp"
#include "saddle/stokes_solver.hpp"

namespace ptatin {
namespace {

// Manufactured divergence-free solution on [0,1]^3 with eta = 1:
//   u = (cos(pi y), cos(pi z), cos(pi x)),  p = sin(pi x)
//   f = -Delta u + grad p = pi^2 u + (pi cos(pi x), 0, 0)
Vec3 exact_u(const Vec3& x) {
  return Vec3{std::cos(M_PI * x[1]), std::cos(M_PI * x[2]),
              std::cos(M_PI * x[0])};
}

Vec3 forcing(const Vec3& x) {
  const Real pi2 = M_PI * M_PI;
  const Vec3 u = exact_u(x);
  return Vec3{pi2 * u[0] + M_PI * std::cos(M_PI * x[0]), pi2 * u[1],
              pi2 * u[2]};
}

/// Solve the manufactured problem on an m^3 mesh; return the L2 velocity
/// error (quadrature-sampled).
Real solve_and_error(Index m) {
  StructuredMesh mesh = StructuredMesh::box(m, m, m, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff(mesh.num_elements()); // eta = 1

  DirichletBc bc(num_velocity_dofs(mesh));
  const Index nx = mesh.nx(), ny = mesh.ny(), nz = mesh.nz();
  for (Index k = 0; k < nz; ++k)
    for (Index j = 0; j < ny; ++j)
      for (Index i = 0; i < nx; ++i) {
        if (i > 0 && i < nx - 1 && j > 0 && j < ny - 1 && k > 0 && k < nz - 1)
          continue;
        const Index n = mesh.node_index(i, j, k);
        const Vec3 v = exact_u(mesh.node_coord(n));
        for (int c = 0; c < 3; ++c) bc.constrain(velocity_dof(n, c), v[c]);
      }

  StokesSolverOptions so;
  so.gmg.levels = suggest_gmg_levels(m);
  so.coarse_solve = GmgCoarseSolve::kBJacobiLu;
  so.coarse_bjacobi_blocks = 1;
  so.krylov.rtol = 1e-11;
  so.krylov.max_it = 800;
  so.bc_factory = [](const StructuredMesh& mm) {
    DirichletBc cbc(num_velocity_dofs(mm));
    for (auto f : {MeshFace::kXMin, MeshFace::kXMax, MeshFace::kYMin,
                   MeshFace::kYMax, MeshFace::kZMin, MeshFace::kZMax})
      constrain_no_slip(mm, f, cbc);
    return cbc;
  };
  StokesSolver solver(mesh, coeff, bc, so);
  Vector f = assemble_forcing(mesh, forcing);
  StokesSolveResult res = solver.solve(f);
  EXPECT_TRUE(res.stats.converged) << "m = " << m;

  // Quadrature-sampled L2 error of the velocity.
  const auto& tab = q2_tabulation();
  Real err2 = 0;
  for (Index e = 0; e < mesh.num_elements(); ++e) {
    ElementGeometry g;
    element_geometry(mesh, e, g);
    Index nodes[kQ2NodesPerEl];
    mesh.element_nodes(e, nodes);
    for (int q = 0; q < kQuadPerEl; ++q) {
      Real v[3] = {0, 0, 0};
      for (int i = 0; i < kQ2NodesPerEl; ++i)
        for (int c = 0; c < 3; ++c)
          v[c] += tab.N[q][i] * res.u[velocity_dof(nodes[i], c)];
      const Vec3 ue = exact_u({g.xq[q][0], g.xq[q][1], g.xq[q][2]});
      for (int c = 0; c < 3; ++c)
        err2 += g.wdetj[q] * (v[c] - ue[c]) * (v[c] - ue[c]);
    }
  }
  return std::sqrt(err2);
}

TEST(Convergence, Q2VelocityIsThirdOrder) {
  // Q2 velocities converge at O(h^3) in L2: halving h divides the error by
  // ~8. Allow a generous margin (>= 5) for pre-asymptotic effects.
  const Real e2 = solve_and_error(2);
  const Real e4 = solve_and_error(4);
  EXPECT_LT(e4, e2);
  EXPECT_GT(e2 / e4, 5.0) << "observed rate " << std::log2(e2 / e4);
}

// --- W-cycle --------------------------------------------------------------------

TEST(Wcycle, AtLeastAsGoodAsVcycle) {
  SinkerParams p;
  p.mx = p.my = p.mz = 12; // 3 levels: W differs from V only with >2 levels
  p.contrast = 1e2;
  StructuredMesh mesh =
      StructuredMesh::box(p.mx, p.my, p.mz, {0, 0, 0}, {1, 1, 1});
  QuadCoefficients coeff = sinker_coefficients(mesh, p);
  DirichletBc bc = sinker_boundary_conditions(mesh);
  Vector f = assemble_body_force(mesh, coeff, {0, 0, -9.8});

  auto iterations = [&](int gamma) {
    StokesSolverOptions so;
    so.gmg.levels = 3;
    so.gmg.cycle_gamma = gamma;
    so.coarse_solve = GmgCoarseSolve::kBJacobiLu;
    so.coarse_bjacobi_blocks = 2;
    so.krylov.max_it = 500;
    StokesSolver solver(mesh, coeff, bc, so);
    StokesSolveResult res = solver.solve(f);
    EXPECT_TRUE(res.stats.converged);
    return res.stats.iterations;
  };
  EXPECT_LE(iterations(2), iterations(1) + 2);
}

// --- shear heating ----------------------------------------------------------------

TEST(ShearHeating, DissipationWarmsTheFluid) {
  // A sheared box with insulating-ish BCs: with shear heating on, the mean
  // temperature after one step is strictly larger.
  auto run = [&](bool heating) {
    ModelSetup setup;
    setup.name = "shear-heating-test";
    setup.mesh = StructuredMesh::box(4, 4, 4, {0, 0, 0}, {1, 1, 1});
    // Driven shear: top lid moves in +x.
    DirichletBc bc(num_velocity_dofs(setup.mesh));
    for (auto fc : {MeshFace::kXMin, MeshFace::kXMax, MeshFace::kYMin,
                    MeshFace::kYMax, MeshFace::kZMin})
      constrain_no_slip(setup.mesh, fc, bc);
    constrain_face_component(setup.mesh, MeshFace::kZMax, 0, 2.0, bc);
    constrain_face_component(setup.mesh, MeshFace::kZMax, 1, 0.0, bc);
    constrain_face_component(setup.mesh, MeshFace::kZMax, 2, 0.0, bc);
    setup.bc = bc;
    setup.bc_factory = [](const StructuredMesh& mm) {
      DirichletBc cbc(num_velocity_dofs(mm));
      for (auto fc : {MeshFace::kXMin, MeshFace::kXMax, MeshFace::kYMin,
                      MeshFace::kYMax, MeshFace::kZMin, MeshFace::kZMax})
        constrain_no_slip(mm, fc, cbc);
      return cbc;
    };
    setup.gravity = {0, 0, 0}; // no buoyancy: flow purely lid-driven
    setup.materials.add(std::make_shared<ConstantViscosityLaw>(1.0, 1.0));
    setup.lithology_of = [](const Vec3&) { return 0; };
    setup.use_energy = true;
    setup.kappa = 1e-3;
    setup.shear_heating = heating;
    setup.initial_temperature = [](const Vec3&) { return 0.0; };
    // No temperature Dirichlet: pure heating balance.

    PtatinOptions po;
    po.points_per_dim = 2;
    po.update_mesh = false;
    po.nonlinear.max_it = 2;
    po.nonlinear.rtol = 1e-2;
    po.nonlinear.linear.gmg.levels = 2;
    po.nonlinear.linear.coarse_solve = GmgCoarseSolve::kBJacobiLu;
    po.nonlinear.linear.coarse_bjacobi_blocks = 1;
    PtatinContext ctx(std::move(setup), po);
    ctx.step(0.05);
    return ctx.temperature().sum() / Real(ctx.mesh().num_vertices());
  };
  const Real t_off = run(false);
  const Real t_on = run(true);
  EXPECT_NEAR(t_off, 0.0, 1e-8);
  EXPECT_GT(t_on, 1e-4);
}

} // namespace
} // namespace ptatin
